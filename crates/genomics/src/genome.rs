//! Synthetic reference genomes.
//!
//! The paper evaluates on the E. coli K-12 reference and the human GRCh38
//! reference. Neither ships with this reproduction, so [`GenomeBuilder`]
//! produces deterministic synthetic references with the two properties that
//! matter to the mapping pipeline:
//!
//! * **Repeats.** Real genomes contain repeated segments that produce
//!   multi-mapping seeds; the chaining step exists largely to disambiguate
//!   them. The builder copies segments of the already-generated prefix to
//!   controlled positions.
//! * **GC bias.** Base composition is not uniform; the builder supports a
//!   configurable GC fraction so minimizer densities resemble real data.

use crate::base::Base;
use crate::rng::Rng;
use crate::rng::{self, SeededRng};
use crate::seq::DnaSeq;
use std::fmt;

/// A reference genome: a named sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    name: String,
    seq: DnaSeq,
}

impl Genome {
    /// Wraps an existing sequence as a genome.
    pub fn from_seq(name: impl Into<String>, seq: DnaSeq) -> Genome {
        Genome {
            name: name.into(),
            seq,
        }
    }

    /// The genome's name (e.g. `"synthetic-ecoli"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full sequence.
    pub fn sequence(&self) -> &DnaSeq {
        &self.seq
    }

    /// Genome length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` if the genome is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

impl fmt::Display for Genome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bp)", self.name, self.len())
    }
}

/// Builder for deterministic synthetic genomes.
///
/// # Example
///
/// ```
/// use genpip_genomics::GenomeBuilder;
///
/// let g = GenomeBuilder::new(50_000)
///     .seed(42)
///     .gc_fraction(0.51)
///     .repeat_fraction(0.10)
///     .name("demo")
///     .build();
/// assert_eq!(g.len(), 50_000);
/// let gc = g.sequence().gc_fraction();
/// assert!((gc - 0.51).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct GenomeBuilder {
    length: usize,
    seed: u64,
    gc_fraction: f64,
    repeat_fraction: f64,
    repeat_len: (usize, usize),
    name: String,
}

impl GenomeBuilder {
    /// Starts a builder for a genome of `length` bases.
    pub fn new(length: usize) -> GenomeBuilder {
        GenomeBuilder {
            length,
            seed: 0,
            gc_fraction: 0.5,
            repeat_fraction: 0.08,
            repeat_len: (300, 3000),
            name: "synthetic".to_string(),
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> GenomeBuilder {
        self.seed = seed;
        self
    }

    /// Sets the target GC fraction in `[0, 1]` (default 0.5).
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn gc_fraction(mut self, gc: f64) -> GenomeBuilder {
        assert!((0.0..=1.0).contains(&gc), "gc fraction must be in [0, 1]");
        self.gc_fraction = gc;
        self
    }

    /// Sets the fraction of the genome occupied by copied repeats
    /// (default 0.08). Higher values make seeds more ambiguous, stressing
    /// chaining — the human profile uses a larger value than E. coli.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 0.9]`.
    pub fn repeat_fraction(mut self, f: f64) -> GenomeBuilder {
        assert!(
            (0.0..=0.9).contains(&f),
            "repeat fraction must be in [0, 0.9]"
        );
        self.repeat_fraction = f;
        self
    }

    /// Sets the (min, max) length of individual repeat copies
    /// (default 300..3000).
    ///
    /// # Panics
    ///
    /// Panics if `min` is 0 or `min > max`.
    pub fn repeat_len(mut self, min: usize, max: usize) -> GenomeBuilder {
        assert!(min > 0 && min <= max, "need 0 < min <= max");
        self.repeat_len = (min, max);
        self
    }

    /// Sets the genome name (default `"synthetic"`).
    pub fn name(mut self, name: impl Into<String>) -> GenomeBuilder {
        self.name = name.into();
        self
    }

    /// Generates the genome.
    pub fn build(&self) -> Genome {
        let mut rng = rng::derive(self.seed, 0x67656e6f6d65); // "genome"
        let mut seq = DnaSeq::with_capacity(self.length);

        // Per-base probabilities honouring the GC target.
        let p_gc = self.gc_fraction / 2.0;
        let p_at = (1.0 - self.gc_fraction) / 2.0;
        let weights = [p_at, p_gc, p_gc, p_at]; // A, C, G, T

        while seq.len() < self.length {
            let remaining = self.length - seq.len();
            let insert_repeat = seq.len() > self.repeat_len.0 * 2
                && remaining > self.repeat_len.0
                && rng.random::<f64>() < self.repeat_probability();
            if insert_repeat {
                self.copy_repeat(&mut rng, &mut seq, remaining);
            } else {
                seq.push(Base::from_code(
                    rng::weighted_index(&mut rng, &weights) as u8
                ));
            }
        }
        Genome {
            name: self.name.clone(),
            seq,
        }
    }

    /// Probability per emitted base of starting a repeat copy, chosen so the
    /// expected repeat coverage matches `repeat_fraction`.
    fn repeat_probability(&self) -> f64 {
        let mean_len = (self.repeat_len.0 + self.repeat_len.1) as f64 / 2.0;
        (self.repeat_fraction / (1.0 - self.repeat_fraction) / mean_len).min(1.0)
    }

    fn copy_repeat(&self, rng: &mut SeededRng, seq: &mut DnaSeq, remaining: usize) {
        let max_len = self.repeat_len.1.min(remaining).min(seq.len());
        let len = rng.random_range(self.repeat_len.0.min(max_len)..=max_len);
        let src = rng.random_range(0..=seq.len() - len);
        let copy = seq.subseq(src, len);
        // Occasionally insert the reverse complement, as real repeats appear
        // on both strands.
        if rng.random::<f64>() < 0.3 {
            seq.extend_from_seq(&copy.reverse_complement());
        } else {
            seq.extend_from_seq(&copy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn build_is_deterministic() {
        let a = GenomeBuilder::new(5_000).seed(9).build();
        let b = GenomeBuilder::new(5_000).seed(9).build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GenomeBuilder::new(5_000).seed(1).build();
        let b = GenomeBuilder::new(5_000).seed(2).build();
        assert_ne!(a.sequence(), b.sequence());
    }

    #[test]
    fn length_is_exact() {
        for len in [0, 1, 999, 10_000] {
            assert_eq!(GenomeBuilder::new(len).build().len(), len);
        }
    }

    #[test]
    fn gc_fraction_is_honoured() {
        for target in [0.3, 0.5, 0.65] {
            let g = GenomeBuilder::new(40_000)
                .seed(3)
                .gc_fraction(target)
                .repeat_fraction(0.0)
                .build();
            let gc = g.sequence().gc_fraction();
            assert!((gc - target).abs() < 0.02, "target {target}, got {gc}");
        }
    }

    #[test]
    fn repeats_create_duplicate_kmers() {
        // With repeats on, long k-mers should recur far more often than in a
        // repeat-free genome of the same size.
        fn max_kmer_multiplicity(g: &Genome) -> usize {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for (_, kmer) in crate::kmer::KmerIter::new(g.sequence(), 21) {
                *counts.entry(kmer.bits()).or_default() += 1;
            }
            counts.into_values().max().unwrap_or(0)
        }
        let with = GenomeBuilder::new(30_000)
            .seed(5)
            .repeat_fraction(0.3)
            .repeat_len(500, 1500)
            .build();
        let without = GenomeBuilder::new(30_000)
            .seed(5)
            .repeat_fraction(0.0)
            .build();
        assert!(max_kmer_multiplicity(&with) >= 2);
        assert_eq!(max_kmer_multiplicity(&without), 1);
    }

    #[test]
    fn display_mentions_name_and_length() {
        let g = GenomeBuilder::new(100).name("eco").build();
        assert_eq!(g.to_string(), "eco (100 bp)");
        assert_eq!(g.name(), "eco");
    }

    #[test]
    #[should_panic(expected = "gc fraction")]
    fn invalid_gc_rejected() {
        let _ = GenomeBuilder::new(10).gc_fraction(1.5);
    }
}
