//! The four-letter DNA alphabet.

use std::fmt;

/// A single DNA nucleotide.
///
/// The discriminants are the canonical 2-bit encoding (`A=0, C=1, G=2, T=3`)
/// used throughout the workspace: [`crate::DnaSeq`] packs four bases per byte
/// and [`crate::Kmer`] packs 32 bases in a `u64` with this encoding.
///
/// # Example
///
/// ```
/// use genpip_genomics::Base;
///
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::from_code(2), Base::G);
/// assert_eq!(Base::G.to_char(), 'G');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Builds a base from its 2-bit code.
    ///
    /// Only the two least-significant bits of `code` are used, so every `u8`
    /// maps to a valid base; this makes the function handy for decoding
    /// packed representations without a fallible path.
    #[inline]
    pub const fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Returns the 2-bit code of this base.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Returns the Watson–Crick complement (`A↔T`, `C↔G`).
    ///
    /// In the 2-bit encoding the complement is simply `3 - code`, i.e. a
    /// bitwise NOT of the two bits.
    #[inline]
    pub const fn complement(self) -> Base {
        Base::from_code(3 - self.code())
    }

    /// Parses an ASCII character (case-insensitive). Returns `None` for
    /// anything outside `{A, C, G, T, a, c, g, t}` (including IUPAC ambiguity
    /// codes, which this reproduction does not model).
    #[inline]
    pub const fn from_char(c: char) -> Option<Base> {
        match c {
            'A' | 'a' => Some(Base::A),
            'C' | 'c' => Some(Base::C),
            'G' | 'g' => Some(Base::G),
            'T' | 't' => Some(Base::T),
            _ => None,
        }
    }

    /// Returns the upper-case ASCII character for this base.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// `true` for G or C; used by the synthetic genome generator's GC-bias
    /// control.
    #[inline]
    pub const fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for Base {
    type Error = ParseBaseError;

    fn try_from(c: char) -> Result<Base, ParseBaseError> {
        Base::from_char(c).ok_or(ParseBaseError { found: c })
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_char()
    }
}

/// Error returned when parsing a non-ACGT character as a [`Base`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBaseError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParseBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DNA base character {:?}", self.found)
    }
}

impl std::error::Error for ParseBaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..4u8 {
            assert_eq!(Base::from_code(code).code(), code);
        }
    }

    #[test]
    fn from_code_masks_high_bits() {
        assert_eq!(Base::from_code(4), Base::A);
        assert_eq!(Base::from_code(0xFF), Base::T);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
        assert_eq!(Base::T.complement(), Base::A);
    }

    #[test]
    fn char_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_char(b.to_char()), Some(b));
            assert_eq!(Base::try_from(b.to_char()).unwrap(), b);
        }
        assert_eq!(Base::from_char('g'), Some(Base::G));
        assert_eq!(Base::from_char('N'), None);
        assert!(Base::try_from('N').is_err());
    }

    #[test]
    fn gc_classification() {
        assert!(Base::G.is_gc());
        assert!(Base::C.is_gc());
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
    }

    #[test]
    fn parse_error_displays_char() {
        let err = Base::try_from('x').unwrap_err();
        assert!(err.to_string().contains('x'));
    }
}
