//! Phred quality scores and average-quality-score (AQS) arithmetic.
//!
//! The paper's read-quality-control step (Section 2.1) computes the average
//! quality score of a read and discards reads below a threshold (commonly
//! Q7). GenPIP's chunk-based pipeline computes the same average
//! *incrementally*: the sum of quality scores of each chunk (`SQS`) is
//! produced as soon as the chunk is basecalled and merged into the read-level
//! average at the end (Equations 1–3). [`AqsAccumulator`] implements exactly
//! that decomposition and is tested to be bit-identical to the whole-read
//! computation.

use std::fmt;

/// A Phred-scaled per-base quality score.
///
/// `Q = -10·log10(p_error)`; Q7 ≈ 20 % error probability is the paper's
/// low-quality threshold. Stored as integer deciphred? No — the paper works
/// with plain Phred units, so we store an `f32` to keep chunk averages exact.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Phred(pub f32);

impl Phred {
    /// Builds a quality score from an error probability in `(0, 1]`.
    ///
    /// Probabilities are clamped to `[1e-10, 1]` so the score stays finite.
    pub fn from_error_prob(p: f64) -> Phred {
        let p = p.clamp(1e-10, 1.0);
        Phred((-10.0 * p.log10()) as f32)
    }

    /// The error probability this score encodes.
    pub fn error_prob(self) -> f64 {
        10f64.powf(-(self.0 as f64) / 10.0)
    }

    /// The raw Phred value.
    #[inline]
    pub fn value(self) -> f32 {
        self.0
    }

    /// FASTQ Sanger encoding (`!` = Q0), saturating at `~` (Q93).
    pub fn to_fastq_char(self) -> char {
        let q = self.0.round().clamp(0.0, 93.0) as u8;
        (b'!' + q) as char
    }

    /// Parses a FASTQ Sanger-encoded quality character.
    ///
    /// Returns `None` if the character is outside the `!..=~` range.
    pub fn from_fastq_char(c: char) -> Option<Phred> {
        let b = c as u32;
        if (0x21..=0x7E).contains(&b) {
            Some(Phred((b - 0x21) as f32))
        } else {
            None
        }
    }
}

impl fmt::Display for Phred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{:.1}", self.0)
    }
}

impl From<f32> for Phred {
    fn from(q: f32) -> Phred {
        Phred(q)
    }
}

/// Average quality score of a slice of per-base scores; 0 for an empty slice.
///
/// This is the whole-read `AQS` of the paper's Equation 1.
pub fn average_quality(quals: &[Phred]) -> f64 {
    if quals.is_empty() {
        return 0.0;
    }
    sum_quality(quals) / quals.len() as f64
}

/// Sum of quality scores of a slice — the per-chunk `SQS` of Equation 2.
pub fn sum_quality(quals: &[Phred]) -> f64 {
    quals.iter().map(|q| q.0 as f64).sum()
}

/// Incremental average-quality accumulator implementing the paper's
/// Equations 2–3: per-chunk sums (`SQS`) are merged as chunks arrive and the
/// read-level average (`AQS`) is available at any point.
///
/// GenPIP's controller keeps one of these per in-flight read (the "AQS
/// calculator unit" of Section 4.2).
///
/// # Example
///
/// ```
/// use genpip_genomics::quality::{average_quality, AqsAccumulator, Phred};
///
/// let chunk1 = vec![Phred(8.0), Phred(10.0)];
/// let chunk2 = vec![Phred(12.0)];
/// let mut acc = AqsAccumulator::new();
/// acc.add_chunk(&chunk1);
/// acc.add_chunk(&chunk2);
/// let whole: Vec<Phred> = chunk1.into_iter().chain(chunk2).collect();
/// assert_eq!(acc.average(), average_quality(&whole));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AqsAccumulator {
    sum: f64,
    count: usize,
}

impl AqsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> AqsAccumulator {
        AqsAccumulator::default()
    }

    /// Merges one basecalled chunk's per-base qualities (Equation 3's
    /// running sum).
    pub fn add_chunk(&mut self, quals: &[Phred]) {
        self.sum += sum_quality(quals);
        self.count += quals.len();
    }

    /// Merges a precomputed chunk sum, as the PIM-CQS unit delivers it
    /// (the hardware computes SQS in-memory and ships only the scalar).
    pub fn add_chunk_sum(&mut self, sqs: f64, bases: usize) {
        self.sum += sqs;
        self.count += bases;
    }

    /// Bases observed so far.
    pub fn bases(&self) -> usize {
        self.count
    }

    /// Current average quality (`AQS`); 0 if nothing was added yet.
    pub fn average(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phred_error_prob_round_trip() {
        for q in [0.0f32, 7.0, 10.0, 20.0, 40.0] {
            let p = Phred(q).error_prob();
            let back = Phred::from_error_prob(p);
            assert!((back.0 - q).abs() < 1e-3, "{q} -> {p} -> {}", back.0);
        }
    }

    #[test]
    fn q7_is_twenty_percent_error() {
        let p = Phred(7.0).error_prob();
        assert!((p - 0.1995).abs() < 1e-3);
    }

    #[test]
    fn fastq_encoding_round_trip() {
        for q in 0..=60 {
            let phred = Phred(q as f32);
            let c = phred.to_fastq_char();
            assert_eq!(Phred::from_fastq_char(c).unwrap().0, q as f32);
        }
        assert_eq!(Phred(0.0).to_fastq_char(), '!');
        assert!(Phred::from_fastq_char(' ').is_none());
    }

    #[test]
    fn fastq_encoding_saturates() {
        assert_eq!(Phred(200.0).to_fastq_char(), '~');
        assert_eq!(Phred(-5.0).to_fastq_char(), '!');
    }

    #[test]
    fn average_of_empty_is_zero() {
        assert_eq!(average_quality(&[]), 0.0);
        assert_eq!(AqsAccumulator::new().average(), 0.0);
    }

    #[test]
    fn chunked_average_equals_whole_read_average() {
        // Equations 1 vs 2+3 from the paper.
        let quals: Vec<Phred> = (0..100).map(|i| Phred(5.0 + (i % 13) as f32)).collect();
        let whole = average_quality(&quals);
        for chunk_size in [1, 7, 25, 100, 300] {
            let mut acc = AqsAccumulator::new();
            for chunk in quals.chunks(chunk_size) {
                acc.add_chunk(chunk);
            }
            assert!(
                (acc.average() - whole).abs() < 1e-12,
                "chunk size {chunk_size}"
            );
            assert_eq!(acc.bases(), quals.len());
        }
    }

    #[test]
    fn add_chunk_sum_matches_add_chunk() {
        let quals: Vec<Phred> = vec![Phred(3.0), Phred(9.0), Phred(12.0)];
        let mut a = AqsAccumulator::new();
        a.add_chunk(&quals);
        let mut b = AqsAccumulator::new();
        b.add_chunk_sum(sum_quality(&quals), quals.len());
        assert_eq!(a, b);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Phred(7.25).to_string(), "Q7.2");
    }
}
