//! Deterministic random sampling helpers.
//!
//! Everything in this workspace must be reproducible from a single seed so
//! that experiments regenerate identically, and the workspace must build
//! offline with no external dependencies. All randomness therefore flows
//! through the self-contained [`SeededRng`] (a splitmix64-seeded
//! xoshiro256++ generator) and the distribution samplers here; no crate
//! consults OS entropy.
//!
//! The [`Rng`] trait mirrors the small slice of the `rand` API the
//! workspace uses (`random::<T>()`, `random_range(..)`), so call sites read
//! identically to idiomatic `rand` code. The normal and log-normal samplers
//! are implemented via Box–Muller.

use std::ops::{Range, RangeInclusive};

/// The small generator interface every sampler in the workspace builds on.
///
/// Implementors only provide [`Rng::next_u64`]; `random` and `random_range`
/// are derived.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly distributed value of a primitive type: floats in
    /// `[0, 1)`, integers over their full range, `bool` as a fair coin.
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b`) or inclusive range (`a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_in(self)
    }
}

/// Types [`Rng::random`] can produce.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for u8 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from `rng` uniformly within the range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits onto `0..span` without modulo bias worth caring
/// about (widening-multiply method; bias is O(span / 2⁶⁴)).
#[inline]
fn bounded(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_signed_ranges!(i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = rng.random();
                let v = self.start + (self.end - self.start) * unit;
                // `unit` < 1, but the multiply can round up to `end`; clamp
                // to keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down()
                }
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// The deterministic RNG used throughout the workspace: xoshiro256++
/// (Blackman & Vigna), seeded by splitmix64 expansion of a `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    s: [u64; 4],
}

impl Rng for SeededRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// One splitmix64 step — the recommended seeder for xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a [`SeededRng`] from a `u64` seed.
///
/// # Example
///
/// ```
/// use genpip_genomics::rng::{seeded, normal};
///
/// let mut a = seeded(42);
/// let mut b = seeded(42);
/// assert_eq!(normal(&mut a, 0.0, 1.0), normal(&mut b, 0.0, 1.0));
/// ```
pub fn seeded(seed: u64) -> SeededRng {
    let mut sm = seed;
    let s = [
        splitmix64(&mut sm),
        splitmix64(&mut sm),
        splitmix64(&mut sm),
        splitmix64(&mut sm),
    ];
    SeededRng { s }
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Used to give each read / each subsystem its own stream so that changing
/// how many samples one consumer draws does not perturb the others.
pub fn derive(seed: u64, stream: u64) -> SeededRng {
    // SplitMix64-style mixing keeps nearby (seed, stream) pairs decorrelated.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seeded(z ^ (z >> 31))
}

/// Samples a standard-normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, std²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples a log-normal deviate with the given parameters of the underlying
/// normal (`mu`, `sigma`). Read lengths in nanopore datasets are heavy-tailed
/// and commonly modelled this way.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Log-normal parameters `(mu, sigma)` such that the distribution has the
/// given mean and median: `median = exp(mu)`, `mean = exp(mu + sigma²/2)`.
///
/// # Panics
///
/// Panics unless `mean >= median > 0` (a log-normal's mean never falls below
/// its median).
pub fn log_normal_params(mean: f64, median: f64) -> (f64, f64) {
    assert!(median > 0.0 && mean >= median, "need mean >= median > 0");
    let mu = median.ln();
    let sigma = (2.0 * (mean / median).ln()).max(0.0).sqrt();
    (mu, sigma)
}

/// Samples a geometric number of trials (≥ 1) with success probability `p`.
/// Used for per-base dwell times in the signal synthesizer.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u32 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = 1.0 - rng.random::<f64>();
    let n = (u.ln() / (1.0 - p).ln()).ceil();
    n.max(1.0).min(u32::MAX as f64) as u32
}

/// Picks an index in `0..weights.len()` with probability proportional to the
/// weights; used for mixture sampling (e.g. the low/high-quality read mix).
///
/// # Panics
///
/// Panics if `weights` is empty, any weight is negative, or all weights are 0.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "negative weight");
            w
        })
        .sum();
    assert!(total > 0.0, "all weights are zero");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(1);
        let mut b = seeded(1);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derive_streams_differ() {
        let mut a = derive(1, 0);
        let mut b = derive(1, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = seeded(9);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = seeded(10);
        for _ in 0..10_000 {
            assert!((0..4u8).contains(&rng.random_range(0..4u8)));
            assert!((1..4u8).contains(&rng.random_range(1..4u8)));
            let v = rng.random_range(10..=20usize);
            assert!((10..=20).contains(&v));
            let f = rng.random_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = seeded(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0..4u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = seeded(12);
        let _ = rng.random_range(5..5u32);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn log_normal_param_inversion() {
        let (mu, sigma) = log_normal_params(9000.0, 8600.0);
        let median = mu.exp();
        let mean = (mu + sigma * sigma / 2.0).exp();
        assert!((median - 8600.0).abs() < 1e-6);
        assert!((mean - 9000.0).abs() < 1e-6);
    }

    #[test]
    fn log_normal_sample_mean() {
        let (mu, sigma) = log_normal_params(5000.0, 4500.0);
        let mut rng = seeded(11);
        let n = 40_000;
        let mean = (0..n).map(|_| log_normal(&mut rng, mu, sigma)).sum::<f64>() / n as f64;
        assert!((mean - 5000.0).abs() / 5000.0 < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "mean >= median")]
    fn log_normal_params_rejects_mean_below_median() {
        let _ = log_normal_params(100.0, 200.0);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = seeded(3);
        let p = 0.125; // mean 8
        let n = 30_000;
        let mean = (0..n).map(|_| geometric(&mut rng, p) as f64).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn geometric_with_p_one_is_always_one() {
        let mut rng = seeded(4);
        assert!((0..100).all(|_| geometric(&mut rng, 1.0) == 1));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        let mut rng = seeded(6);
        let _ = weighted_index(&mut rng, &[]);
    }
}
