//! Descriptive statistics for read sets (Table 1 of the paper).

use crate::read::ReadSet;

/// Summary statistics matching the rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReadSetStats {
    /// Mean read length in bases.
    pub mean_read_length: f64,
    /// Mean of per-read average quality scores.
    pub mean_read_quality: f64,
    /// Median read length in bases.
    pub median_read_length: f64,
    /// Median of per-read average quality scores.
    pub median_read_quality: f64,
    /// Number of reads.
    pub number_of_reads: usize,
    /// Total bases across all reads.
    pub total_bases: usize,
}

impl ReadSetStats {
    /// Computes the statistics of a read set. All fields are zero for an
    /// empty set.
    pub fn of(reads: &ReadSet) -> ReadSetStats {
        if reads.is_empty() {
            return ReadSetStats::default();
        }
        let mut lengths: Vec<f64> = reads.iter().map(|r| r.len() as f64).collect();
        let mut quals: Vec<f64> = reads.iter().map(|r| r.average_quality()).collect();
        let n = lengths.len() as f64;
        let stats = ReadSetStats {
            mean_read_length: lengths.iter().sum::<f64>() / n,
            mean_read_quality: quals.iter().sum::<f64>() / n,
            median_read_length: median(&mut lengths),
            median_read_quality: median(&mut quals),
            number_of_reads: reads.len(),
            total_bases: reads.total_bases(),
        };
        stats
    }
}

/// Median of a slice (sorts in place). Returns 0 for an empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stats input"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean; 0 for an empty slice.
///
/// Figures 10 and 11 of the paper report GMEAN columns across dataset/chunk
/// configurations.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::Phred;
    use crate::read::{Read, ReadOrigin};
    use crate::seq::DnaSeq;

    fn read_of(id: u32, len: usize, q: f32) -> Read {
        let seq: DnaSeq = "ACGT".repeat(len.div_ceil(4)).parse().unwrap();
        let seq = seq.subseq(0, len);
        Read::new(
            id,
            seq,
            vec![Phred(q); len],
            ReadOrigin::Reference {
                start: 0,
                len,
                reverse: false,
            },
        )
    }

    #[test]
    fn empty_set_is_all_zero() {
        let stats = ReadSetStats::of(&ReadSet::new());
        assert_eq!(stats, ReadSetStats::default());
    }

    #[test]
    fn stats_on_known_set() {
        let reads: ReadSet = vec![
            read_of(0, 100, 8.0),
            read_of(1, 200, 10.0),
            read_of(2, 600, 12.0),
        ]
        .into_iter()
        .collect();
        let stats = ReadSetStats::of(&reads);
        assert_eq!(stats.number_of_reads, 3);
        assert_eq!(stats.total_bases, 900);
        assert!((stats.mean_read_length - 300.0).abs() < 1e-9);
        assert!((stats.median_read_length - 200.0).abs() < 1e-9);
        assert!((stats.mean_read_quality - 10.0).abs() < 1e-6);
        assert!((stats.median_read_quality - 10.0).abs() < 1e-6);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
