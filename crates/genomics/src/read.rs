//! Sequenced reads and read sets.

use crate::quality::{average_quality, Phred};
use crate::seq::DnaSeq;
use std::fmt;

/// Where a simulated read truly came from — ground truth the evaluation uses
/// to score mapping accuracy and early-rejection false negatives.
///
/// Real datasets do not carry this, but the paper's sensitivity analysis
/// (Section 6.3) needs an oracle: a rejection counts as a false negative only
/// if the discarded read *would* have passed quality control / mapped. The
/// simulator records the oracle here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOrigin {
    /// Sampled from the reference at `start..start+len` on the given strand.
    Reference {
        /// Start offset in the reference genome.
        start: usize,
        /// Length of the sampled span (pre-error).
        len: usize,
        /// `true` if the read is the reverse complement of the span.
        reverse: bool,
    },
    /// Sampled from a contaminant genome — unmappable against the reference.
    /// The paper's E. coli dataset has ≈10 % of these (Section 2.3).
    Contaminant,
}

impl ReadOrigin {
    /// `true` if the read originates from the reference genome.
    pub fn is_reference(&self) -> bool {
        matches!(self, ReadOrigin::Reference { .. })
    }
}

/// A basecalled read: identifier, sequence, per-base qualities, and (for
/// simulated data) its ground-truth origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// Unique identifier within its [`ReadSet`].
    pub id: u32,
    /// The basecalled sequence.
    pub seq: DnaSeq,
    /// Per-base Phred qualities, same length as `seq`.
    pub quals: Vec<Phred>,
    /// Ground-truth origin (simulation only).
    pub origin: ReadOrigin,
}

impl Read {
    /// Creates a read, checking that sequence and quality lengths agree.
    ///
    /// # Panics
    ///
    /// Panics if `seq.len() != quals.len()`.
    pub fn new(id: u32, seq: DnaSeq, quals: Vec<Phred>, origin: ReadOrigin) -> Read {
        assert_eq!(
            seq.len(),
            quals.len(),
            "sequence and quality lengths must match"
        );
        Read {
            id,
            seq,
            quals,
            origin,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` if the read has no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Whole-read average quality score (the paper's Equation 1 `AQS`).
    pub fn average_quality(&self) -> f64 {
        average_quality(&self.quals)
    }

    /// Number of chunks of `chunk_bases` needed to cover the read (the
    /// paper's `N_total`). The final chunk may be partial.
    pub fn chunk_count(&self, chunk_bases: usize) -> usize {
        assert!(chunk_bases > 0, "chunk size must be positive");
        self.len().div_ceil(chunk_bases)
    }
}

impl fmt::Display for Read {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read#{} ({} bp, AQS {:.2})",
            self.id,
            self.len(),
            self.average_quality()
        )
    }
}

/// An ordered collection of reads, as delivered by a sequencing run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadSet {
    reads: Vec<Read>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> ReadSet {
        ReadSet::default()
    }

    /// Appends a read.
    pub fn push(&mut self, read: Read) {
        self.reads.push(read);
    }

    /// Number of reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// `true` if there are no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Returns the read at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&Read> {
        self.reads.get(index)
    }

    /// Iterates over the reads.
    pub fn iter(&self) -> std::slice::Iter<'_, Read> {
        self.reads.iter()
    }

    /// Total bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(Read::len).sum()
    }
}

impl FromIterator<Read> for ReadSet {
    fn from_iter<I: IntoIterator<Item = Read>>(iter: I) -> ReadSet {
        ReadSet {
            reads: iter.into_iter().collect(),
        }
    }
}

impl Extend<Read> for ReadSet {
    fn extend<I: IntoIterator<Item = Read>>(&mut self, iter: I) {
        self.reads.extend(iter);
    }
}

impl<'a> IntoIterator for &'a ReadSet {
    type Item = &'a Read;
    type IntoIter = std::slice::Iter<'a, Read>;

    fn into_iter(self) -> Self::IntoIter {
        self.reads.iter()
    }
}

impl IntoIterator for ReadSet {
    type Item = Read;
    type IntoIter = std::vec::IntoIter<Read>;

    fn into_iter(self) -> Self::IntoIter {
        self.reads.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_read(id: u32, seq: &str, q: f32) -> Read {
        let seq: DnaSeq = seq.parse().unwrap();
        let quals = vec![Phred(q); seq.len()];
        Read::new(
            id,
            seq,
            quals,
            ReadOrigin::Reference {
                start: 0,
                len: 4,
                reverse: false,
            },
        )
    }

    #[test]
    fn read_average_quality() {
        let read = mk_read(0, "ACGT", 9.0);
        assert_eq!(read.average_quality(), 9.0);
        assert_eq!(read.len(), 4);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_quals_panic() {
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let _ = Read::new(0, seq, vec![Phred(1.0)], ReadOrigin::Contaminant);
    }

    #[test]
    fn chunk_count_rounds_up() {
        let read = mk_read(0, &"A".repeat(700), 10.0);
        assert_eq!(read.chunk_count(300), 3);
        assert_eq!(read.chunk_count(700), 1);
        assert_eq!(read.chunk_count(701), 1);
    }

    #[test]
    fn origin_classification() {
        assert!(ReadOrigin::Reference {
            start: 0,
            len: 1,
            reverse: false
        }
        .is_reference());
        assert!(!ReadOrigin::Contaminant.is_reference());
    }

    #[test]
    fn read_set_accumulates() {
        let mut set = ReadSet::new();
        assert!(set.is_empty());
        set.push(mk_read(0, "ACGT", 8.0));
        set.push(mk_read(1, "ACGTACGT", 8.0));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bases(), 12);
        assert_eq!(set.get(1).unwrap().id, 1);
        assert!(set.get(2).is_none());
        let ids: Vec<u32> = set.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn read_set_from_iterator() {
        let set: ReadSet = (0..3).map(|i| mk_read(i, "ACGT", 5.0)).collect();
        assert_eq!(set.len(), 3);
        let owned: Vec<Read> = set.clone().into_iter().collect();
        assert_eq!(owned.len(), 3);
        let borrowed: Vec<&Read> = (&set).into_iter().collect();
        assert_eq!(borrowed.len(), 3);
    }

    #[test]
    fn display_mentions_id_and_length() {
        let s = mk_read(7, "ACGT", 9.0).to_string();
        assert!(s.contains("read#7"));
        assert!(s.contains("4 bp"));
    }
}
