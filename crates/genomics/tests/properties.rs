//! Property-based tests of the genomics primitives.

use genpip_genomics::{Base, DnaSeq, Kmer, KmerIter};
use proptest::prelude::*;

fn arb_dna(range: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, range)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packing_round_trips_through_strings(seq in arb_dna(0..200)) {
        let text = seq.to_string();
        let parsed: DnaSeq = text.parse().unwrap();
        prop_assert_eq!(parsed, seq);
    }

    #[test]
    fn set_then_get_is_identity(seq in arb_dna(1..150), idx in 0usize..150, code in 0u8..4) {
        let mut seq = seq;
        let idx = idx % seq.len();
        let base = Base::from_code(code);
        seq.set(idx, base);
        prop_assert_eq!(seq.get(idx), base);
    }

    #[test]
    fn subseq_indexing_agrees_with_parent(seq in arb_dna(1..200), start in 0usize..200, len in 0usize..200) {
        let start = start % seq.len();
        let len = len.min(seq.len() - start);
        let sub = seq.subseq(start, len);
        for i in 0..len {
            prop_assert_eq!(sub.get(i), seq.get(start + i));
        }
    }

    #[test]
    fn reverse_complement_reverses_gc_content(seq in arb_dna(1..300)) {
        let rc = seq.reverse_complement();
        // GC count is strand-invariant (G↔C, A↔T).
        let gc: usize = seq.iter().filter(|b| b.is_gc()).count();
        let gc_rc: usize = rc.iter().filter(|b| b.is_gc()).count();
        prop_assert_eq!(gc, gc_rc);
        prop_assert_eq!(rc.len(), seq.len());
    }

    #[test]
    fn packed_bytes_is_minimal(seq in arb_dna(0..300)) {
        prop_assert_eq!(seq.packed_bytes(), seq.len().div_ceil(4));
    }

    #[test]
    fn canonical_kmer_is_strand_invariant(seq in arb_dna(12..64)) {
        let k = 9;
        let rc = seq.reverse_complement();
        // The k-mer at offset o on the forward strand occupies offset
        // len - k - o on the reverse strand.
        for (o, kmer) in KmerIter::new(&seq, k) {
            let mirror = Kmer::from_seq(&rc, seq.len() - k - o, k);
            prop_assert_eq!(kmer.canonical(), mirror.canonical());
        }
    }

    #[test]
    fn kmer_bits_round_trip(seq in arb_dna(10..40)) {
        let k = 7;
        for (_, kmer) in KmerIter::new(&seq, k) {
            let rebuilt = Kmer::from_bits(kmer.bits(), k);
            prop_assert_eq!(rebuilt, kmer);
            prop_assert_eq!(rebuilt.to_string(), kmer.to_string());
        }
    }

    #[test]
    fn fastq_round_trip_preserves_reads(seq in arb_dna(1..120), q in 0u8..60) {
        use genpip_genomics::fastx::{read_fastq, write_fastq};
        use genpip_genomics::quality::Phred;
        use genpip_genomics::{Read, ReadOrigin, ReadSet};
        let quals = vec![Phred(q as f32); seq.len()];
        let mut set = ReadSet::new();
        set.push(Read::new(0, seq.clone(), quals.clone(),
            ReadOrigin::Reference { start: 0, len: 0, reverse: false }));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &set).unwrap();
        let parsed = read_fastq(buf.as_slice()).unwrap();
        prop_assert_eq!(&parsed.get(0).unwrap().seq, &seq);
        prop_assert_eq!(&parsed.get(0).unwrap().quals, &quals);
    }

    #[test]
    fn error_model_rates_bound_edit_count(total_rate in 0.0f64..0.5, seed in 0u64..50) {
        use genpip_genomics::rng::seeded;
        use genpip_genomics::ErrorModel;
        let truth: DnaSeq = (0..2_000u32).map(|i| Base::from_code((i % 4) as u8)).collect();
        let model = ErrorModel::with_total_rate(total_rate);
        let mut rng = seeded(seed);
        let (_, ops) = model.apply(&truth, &mut rng);
        // Insertions are at most one per base plus one more draw each, so
        // the op count is bounded by 2 per base; with realistic rates it
        // stays near rate × len.
        prop_assert!(ops.len() <= 2 * truth.len());
        let rate = ops.len() as f64 / truth.len() as f64;
        prop_assert!(rate <= 2.5 * total_rate + 0.02, "rate {} for target {}", rate, total_rate);
    }
}
