//! Randomized property tests of the genomics primitives.
//!
//! Each test replays the same invariant over many seeded random cases using
//! the workspace's own deterministic RNG (no external property-testing
//! dependency; the workspace builds offline).

use genpip_genomics::rng::{seeded, Rng, SeededRng};
use genpip_genomics::{Base, DnaSeq, Kmer, KmerIter};

const CASES: u64 = 128;

fn arb_dna(rng: &mut SeededRng, min: usize, max: usize) -> DnaSeq {
    let len = rng.random_range(min..max.max(min + 1));
    (0..len)
        .map(|_| Base::from_code(rng.random_range(0..4u8)))
        .collect()
}

#[test]
fn packing_round_trips_through_strings() {
    for case in 0..CASES {
        let mut rng = seeded(0x5712 ^ case);
        let seq = arb_dna(&mut rng, 0, 200);
        let text = seq.to_string();
        let parsed: DnaSeq = text.parse().unwrap();
        assert_eq!(parsed, seq);
    }
}

#[test]
fn set_then_get_is_identity() {
    for case in 0..CASES {
        let mut rng = seeded(0x5E7 ^ case);
        let mut seq = arb_dna(&mut rng, 1, 150);
        let idx = rng.random_range(0..150usize) % seq.len();
        let base = Base::from_code(rng.random_range(0..4u8));
        seq.set(idx, base);
        assert_eq!(seq.get(idx), base);
    }
}

#[test]
fn subseq_indexing_agrees_with_parent() {
    for case in 0..CASES {
        let mut rng = seeded(0x50B ^ case);
        let seq = arb_dna(&mut rng, 1, 200);
        let start = rng.random_range(0..200usize) % seq.len();
        let len = rng.random_range(0..200usize).min(seq.len() - start);
        let sub = seq.subseq(start, len);
        for i in 0..len {
            assert_eq!(sub.get(i), seq.get(start + i));
        }
    }
}

#[test]
fn reverse_complement_reverses_gc_content() {
    for case in 0..CASES {
        let mut rng = seeded(0x6C ^ case);
        let seq = arb_dna(&mut rng, 1, 300);
        let rc = seq.reverse_complement();
        // GC count is strand-invariant (G↔C, A↔T).
        let gc: usize = seq.iter().filter(|b| b.is_gc()).count();
        let gc_rc: usize = rc.iter().filter(|b| b.is_gc()).count();
        assert_eq!(gc, gc_rc);
        assert_eq!(rc.len(), seq.len());
    }
}

#[test]
fn packed_bytes_is_minimal() {
    for case in 0..CASES {
        let mut rng = seeded(0xBB ^ case);
        let seq = arb_dna(&mut rng, 0, 300);
        assert_eq!(seq.packed_bytes(), seq.len().div_ceil(4));
    }
}

#[test]
fn canonical_kmer_is_strand_invariant() {
    for case in 0..CASES {
        let mut rng = seeded(0xCA ^ case);
        let seq = arb_dna(&mut rng, 12, 64);
        let k = 9;
        let rc = seq.reverse_complement();
        // The k-mer at offset o on the forward strand occupies offset
        // len - k - o on the reverse strand.
        for (o, kmer) in KmerIter::new(&seq, k) {
            let mirror = Kmer::from_seq(&rc, seq.len() - k - o, k);
            assert_eq!(kmer.canonical(), mirror.canonical());
        }
    }
}

#[test]
fn kmer_bits_round_trip() {
    for case in 0..CASES {
        let mut rng = seeded(0xB175 ^ case);
        let seq = arb_dna(&mut rng, 10, 40);
        let k = 7;
        for (_, kmer) in KmerIter::new(&seq, k) {
            let rebuilt = Kmer::from_bits(kmer.bits(), k);
            assert_eq!(rebuilt, kmer);
            assert_eq!(rebuilt.to_string(), kmer.to_string());
        }
    }
}

#[test]
fn fastq_round_trip_preserves_reads() {
    use genpip_genomics::fastx::{read_fastq, write_fastq};
    use genpip_genomics::quality::Phred;
    use genpip_genomics::{Read, ReadOrigin, ReadSet};
    for case in 0..CASES {
        let mut rng = seeded(0xFA57 ^ case);
        let seq = arb_dna(&mut rng, 1, 120);
        let q = rng.random_range(0..60u8);
        let quals = vec![Phred(q as f32); seq.len()];
        let mut set = ReadSet::new();
        set.push(Read::new(
            0,
            seq.clone(),
            quals.clone(),
            ReadOrigin::Reference {
                start: 0,
                len: 0,
                reverse: false,
            },
        ));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &set).unwrap();
        let parsed = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(&parsed.get(0).unwrap().seq, &seq);
        assert_eq!(&parsed.get(0).unwrap().quals, &quals);
    }
}

#[test]
fn error_model_rates_bound_edit_count() {
    use genpip_genomics::ErrorModel;
    for case in 0..50 {
        let mut rng = seeded(0xE44 ^ case);
        let total_rate = rng.random_range(0.0f64..0.5);
        let truth: DnaSeq = (0..2_000u32)
            .map(|i| Base::from_code((i % 4) as u8))
            .collect();
        let model = ErrorModel::with_total_rate(total_rate);
        let mut apply_rng = seeded(case);
        let (_, ops) = model.apply(&truth, &mut apply_rng);
        // Insertions are at most one per base plus one more draw each, so
        // the op count is bounded by 2 per base; with realistic rates it
        // stays near rate × len.
        assert!(ops.len() <= 2 * truth.len());
        let rate = ops.len() as f64 / truth.len() as f64;
        assert!(
            rate <= 2.5 * total_rate + 0.02,
            "rate {rate} for target {total_rate}"
        );
    }
}
