//! Property-based tests of the mapping pipeline's invariants.

use genpip_genomics::{Base, DnaSeq};
use genpip_mapping::align::{banded_global, AlignmentParams, CigarOp};
use genpip_mapping::{minimizers, Anchor, ChainParams, IncrementalChainer};
use proptest::prelude::*;

fn arb_dna(range: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, range)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_window_has_a_minimizer(seq in arb_dna(60..400)) {
        let (k, w) = (11, 8);
        let mins = minimizers(&seq, k, w);
        let positions: Vec<usize> = mins.iter().map(|m| m.pos as usize).collect();
        let n_kmers = seq.len() - k + 1;
        // Ignore windows whose k-mers are all palindromic (cannot happen at
        // k=11, which is odd — odd-length DNA k-mers are never their own
        // reverse complement).
        for start in 0..n_kmers.saturating_sub(w - 1) {
            prop_assert!(
                positions.iter().any(|&p| (start..start + w).contains(&p)),
                "window at {} uncovered", start
            );
        }
    }

    #[test]
    fn minimizer_positions_are_valid_and_sorted(seq in arb_dna(20..300)) {
        let (k, w) = (11, 6);
        let mins = minimizers(&seq, k, w);
        prop_assert!(mins.windows(2).all(|m| m[0].pos < m[1].pos));
        for m in &mins {
            prop_assert!((m.pos as usize) + k <= seq.len());
        }
    }

    #[test]
    fn alignment_score_upper_bound(a in arb_dna(1..80), b in arb_dna(1..80)) {
        let p = AlignmentParams::default();
        let aln = banded_global(&a, &b, &p, 0, 40);
        // Score can never beat matching every column of the shorter seq.
        let best_possible = p.match_score * a.len().min(b.len()) as i32;
        prop_assert!(aln.score <= best_possible);
        prop_assert!(aln.matches <= a.len().min(b.len()));
    }

    #[test]
    fn cigar_consumes_exactly_both_sequences(a in arb_dna(0..80), b in arb_dna(0..80)) {
        let p = AlignmentParams::default();
        let aln = banded_global(&a, &b, &p, 0, 40);
        let (mut qc, mut rc) = (0usize, 0usize);
        for op in &aln.cigar {
            match op {
                CigarOp::Match(l) => { qc += *l as usize; rc += *l as usize; }
                CigarOp::Ins(l) => qc += *l as usize,
                CigarOp::Del(l) => rc += *l as usize,
            }
        }
        prop_assert_eq!(qc, a.len());
        prop_assert_eq!(rc, b.len());
    }

    #[test]
    fn self_alignment_is_perfect(a in arb_dna(1..120)) {
        let p = AlignmentParams::default();
        let aln = banded_global(&a, &a, &p, 0, 8);
        prop_assert_eq!(aln.score, p.match_score * a.len() as i32);
        prop_assert_eq!(aln.matches, a.len());
        prop_assert!((aln.identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_extension_is_monotone_in_anchors(
        spacings in proptest::collection::vec(5u32..40, 1..30),
    ) {
        // Adding colinear anchors never lowers the best chain score.
        let mut chainer = IncrementalChainer::new(ChainParams::for_k(15));
        let (mut q, mut r) = (0u32, 500u32);
        let mut last = 0.0f64;
        for s in spacings {
            chainer.extend(&[Anchor { qpos: q, rpos: r }]);
            let score = chainer.best_score();
            prop_assert!(score >= last, "score dropped from {} to {}", last, score);
            last = score;
            q += s;
            r += s;
        }
    }

    #[test]
    fn step_score_never_exceeds_k(
        a in (0u32..10_000, 0u32..10_000),
        b in (0u32..10_000, 0u32..10_000),
    ) {
        let p = ChainParams::for_k(15);
        let from = Anchor { qpos: a.0, rpos: a.1 };
        let to = Anchor { qpos: b.0, rpos: b.1 };
        if let Some(score) = p.step_score(from, to) {
            prop_assert!(score <= p.k as f64 + 1e-12);
        }
    }
}
