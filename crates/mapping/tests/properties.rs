//! Randomized property tests of the mapping pipeline's invariants.
//!
//! Seeded random cases over the workspace's own deterministic RNG (no
//! external property-testing dependency).

use genpip_genomics::rng::{seeded, Rng, SeededRng};
use genpip_genomics::{Base, DnaSeq};
use genpip_mapping::align::{banded_global, AlignmentParams, CigarOp};
use genpip_mapping::{minimizers, Anchor, ChainParams, IncrementalChainer};

const CASES: u64 = 64;

fn arb_dna(rng: &mut SeededRng, min: usize, max: usize) -> DnaSeq {
    let len = rng.random_range(min..max);
    (0..len)
        .map(|_| Base::from_code(rng.random_range(0..4u8)))
        .collect()
}

#[test]
fn every_window_has_a_minimizer() {
    for case in 0..CASES {
        let mut rng = seeded(0x317 ^ case);
        let seq = arb_dna(&mut rng, 60, 400);
        let (k, w) = (11, 8);
        let mins = minimizers(&seq, k, w);
        let positions: Vec<usize> = mins.iter().map(|m| m.pos as usize).collect();
        let n_kmers = seq.len() - k + 1;
        // Palindrome-only windows cannot happen at k=11 (odd-length DNA
        // k-mers are never their own reverse complement).
        for start in 0..n_kmers.saturating_sub(w - 1) {
            assert!(
                positions.iter().any(|&p| (start..start + w).contains(&p)),
                "window at {start} uncovered"
            );
        }
    }
}

#[test]
fn minimizer_positions_are_valid_and_sorted() {
    for case in 0..CASES {
        let mut rng = seeded(0x505 ^ case);
        let seq = arb_dna(&mut rng, 20, 300);
        let (k, w) = (11, 6);
        let mins = minimizers(&seq, k, w);
        assert!(mins.windows(2).all(|m| m[0].pos < m[1].pos));
        for m in &mins {
            assert!((m.pos as usize) + k <= seq.len());
        }
    }
}

#[test]
fn alignment_score_upper_bound() {
    for case in 0..CASES {
        let mut rng = seeded(0xA11 ^ case);
        let a = arb_dna(&mut rng, 1, 80);
        let b = arb_dna(&mut rng, 1, 80);
        let p = AlignmentParams::default();
        let aln = banded_global(&a, &b, &p, 0, 40);
        // Score can never beat matching every column of the shorter seq.
        let best_possible = p.match_score * a.len().min(b.len()) as i32;
        assert!(aln.score <= best_possible);
        assert!(aln.matches <= a.len().min(b.len()));
    }
}

#[test]
fn cigar_consumes_exactly_both_sequences() {
    for case in 0..CASES {
        let mut rng = seeded(0xC16 ^ case);
        let a = arb_dna(&mut rng, 0, 80);
        let b = arb_dna(&mut rng, 0, 80);
        let p = AlignmentParams::default();
        let aln = banded_global(&a, &b, &p, 0, 40);
        let (mut qc, mut rc) = (0usize, 0usize);
        for op in &aln.cigar {
            match op {
                CigarOp::Match(l) => {
                    qc += *l as usize;
                    rc += *l as usize;
                }
                CigarOp::Ins(l) => qc += *l as usize,
                CigarOp::Del(l) => rc += *l as usize,
            }
        }
        assert_eq!(qc, a.len());
        assert_eq!(rc, b.len());
    }
}

#[test]
fn self_alignment_is_perfect() {
    for case in 0..CASES {
        let mut rng = seeded(0x5E1F ^ case);
        let a = arb_dna(&mut rng, 1, 120);
        let p = AlignmentParams::default();
        let aln = banded_global(&a, &a, &p, 0, 8);
        assert_eq!(aln.score, p.match_score * a.len() as i32);
        assert_eq!(aln.matches, a.len());
        assert!((aln.identity() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn chain_extension_is_monotone_in_anchors() {
    for case in 0..CASES {
        let mut rng = seeded(0x30A ^ case);
        let n = rng.random_range(1..30usize);
        // Adding colinear anchors never lowers the best chain score.
        let mut chainer = IncrementalChainer::new(ChainParams::for_k(15));
        let (mut q, mut r) = (0u64, 500u64);
        let mut last = 0.0f64;
        for _ in 0..n {
            chainer.extend(&[Anchor { qpos: q, rpos: r }]);
            let score = chainer.best_score();
            assert!(score >= last, "score dropped from {last} to {score}");
            last = score;
            let s = rng.random_range(5..40u64);
            q += s;
            r += s;
        }
    }
}

#[test]
fn step_score_never_exceeds_k() {
    for case in 0..CASES {
        let mut rng = seeded(0x57E ^ case);
        let p = ChainParams::for_k(15);
        let from = Anchor {
            qpos: rng.random_range(0..10_000u64),
            rpos: rng.random_range(0..10_000u64),
        };
        let to = Anchor {
            qpos: rng.random_range(0..10_000u64),
            rpos: rng.random_range(0..10_000u64),
        };
        if let Some(score) = p.step_score(from, to) {
            assert!(score <= p.k as f64 + 1e-12);
        }
    }
}
