//! End-to-end read mapping.
//!
//! [`Mapper`] composes sketching, seeding, chaining and alignment into the
//! whole-read flow of a conventional pipeline ([`Mapper::map`]), and also
//! exposes the per-chunk pieces ([`Mapper::sketch_and_seed`],
//! [`Mapper::finalize_mapping`]) that GenPIP's chunk-based pipeline drives
//! incrementally.

use crate::align::{banded_global, Alignment, AlignmentParams, CigarOp};
use crate::chain::{ChainParams, IncrementalChainer};
use crate::minimizer::{minimizers_into, Minimizer, MinimizerScratch};
use crate::seed::{seed_batch_into, SeedBatch, Strand};
use crate::shard::{ShardedReferenceIndex, Shards};
use crate::RefPos;
use genpip_genomics::{DnaSeq, Genome};
use std::sync::Arc;

/// Mapper configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperParams {
    /// Minimizer k-mer length.
    pub k: usize,
    /// Minimizer window size.
    pub w: usize,
    /// How many position-range shards the reference index is split into
    /// ([`Shards`]). Results are **bit-identical** for every setting; the
    /// knob only bounds per-shard index memory and maps shards onto the PIM
    /// seeding unit's CAM subarray groups.
    pub shards: Shards,
    /// Chaining parameters.
    pub chain: ChainParams,
    /// Alignment scoring.
    pub align: AlignmentParams,
    /// Reads whose best chain scores below this are unmapped without
    /// alignment (the read-level `θ_cm` role in the conventional pipeline).
    pub min_chain_score: f64,
    /// Alignments below this identity are rejected as unmapped.
    pub min_identity: f64,
    /// Extra band half-width beyond the chain's diagonal spread.
    pub band_margin: usize,
    /// First coordinate of the reference's position space (default 0).
    /// A nonzero offset shifts every reported coordinate by the same amount
    /// and is how coordinate spaces past the 4 Gbp `u32` horizon are
    /// exercised without materializing 4 GB of sequence; mapping behaviour is
    /// otherwise identical.
    pub base_offset: RefPos,
}

impl Default for MapperParams {
    fn default() -> MapperParams {
        let k = 15;
        MapperParams {
            k,
            w: 10,
            shards: Shards::Single,
            chain: ChainParams::for_k(k),
            align: AlignmentParams::default(),
            min_chain_score: 30.0,
            min_identity: 0.55,
            band_margin: 32,
            base_offset: 0,
        }
    }
}

/// Workload counters for one mapped read — inputs to the hardware cost
/// models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MappingCounters {
    /// Minimizers extracted from the query.
    pub minimizers: usize,
    /// Hash-table (CAM) lookups.
    pub seed_queries: usize,
    /// Anchors produced.
    pub anchors: usize,
    /// Chaining DP predecessor evaluations.
    pub chain_evals: usize,
    /// Alignment DP cells.
    pub align_cells: usize,
}

impl MappingCounters {
    /// Accumulates another counter set.
    pub fn add(&mut self, other: &MappingCounters) {
        self.minimizers += other.minimizers;
        self.seed_queries += other.seed_queries;
        self.anchors += other.anchors;
        self.chain_evals += other.chain_evals;
        self.align_cells += other.align_cells;
    }
}

/// A successful mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// The reference this mapping hit, set by a multi-reference
    /// [`crate::ReferenceSet`] merge; `None` for plain single-reference
    /// mapping (whose output stays byte-for-byte what it always was).
    pub ref_name: Option<Arc<str>>,
    /// Reference start (forward-strand coordinates including the index's
    /// base offset, inclusive).
    pub ref_start: usize,
    /// Reference end (exclusive).
    pub ref_end: usize,
    /// Mapping strand.
    pub strand: Strand,
    /// Best chain score.
    pub chain_score: f64,
    /// Alignment score.
    pub align_score: i32,
    /// BLAST identity of the alignment.
    pub identity: f64,
    /// Mapping quality (0–60).
    pub mapq: u8,
    /// Alignment CIGAR (query vs the reported reference span).
    pub cigar: Vec<CigarOp>,
}

/// Outcome of mapping one read.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingResult {
    /// The mapping, or `None` if the read is unmapped.
    pub mapping: Option<Mapping>,
    /// Best chain score observed (even when unmapped — ER-CMR thresholds
    /// use this).
    pub best_chain_score: f64,
    /// Workload counters.
    pub counters: MappingCounters,
}

/// Reusable per-worker sketching/seeding working memory for
/// [`Mapper::sketch_and_seed_into`]. One instance per thread keeps
/// steady-state seeding free of per-chunk allocations.
#[derive(Debug, Clone, Default)]
pub struct SeedScratch {
    pub(crate) mins: Vec<Minimizer>,
    pub(crate) sketch: MinimizerScratch,
}

impl SeedScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> SeedScratch {
        SeedScratch::default()
    }
}

/// The read mapper.
///
/// The reference genome **and** the sharded minimizer index are held behind
/// [`Arc`]s, so cloning a `Mapper` (or constructing one via
/// [`Mapper::build_shared`]) shares one copy of the reference data and one
/// set of index shards; a single mapper instance serves all worker threads
/// of the parallel/streaming pipeline by shared reference (`Mapper` is
/// `Sync`), and even cloned mappers never duplicate whole-genome index
/// state.
#[derive(Debug, Clone)]
pub struct Mapper {
    genome: Arc<Genome>,
    index: Arc<ShardedReferenceIndex>,
    params: MapperParams,
}

impl Mapper {
    /// Builds the reference index and returns a ready mapper, copying the
    /// genome once into shared storage. Callers that already hold an
    /// `Arc<Genome>` should prefer [`Mapper::build_shared`].
    pub fn build(genome: &Genome, params: MapperParams) -> Mapper {
        Mapper::build_shared(Arc::new(genome.clone()), params)
    }

    /// Builds the reference index over an already-shared genome, without
    /// copying the reference data. The index is sharded per
    /// [`MapperParams::shards`] and shared behind an [`Arc`].
    pub fn build_shared(genome: Arc<Genome>, params: MapperParams) -> Mapper {
        let index = Arc::new(ShardedReferenceIndex::build_at(
            &genome,
            params.k,
            params.w,
            params.shards,
            params.base_offset,
        ));
        Mapper {
            genome,
            index,
            params,
        }
    }

    /// The mapper's configuration.
    pub fn params(&self) -> &MapperParams {
        &self.params
    }

    /// The underlying sharded reference index.
    pub fn index(&self) -> &ShardedReferenceIndex {
        &self.index
    }

    /// A shared handle to the index (for hardware loaders that outlive the
    /// mapper borrow).
    pub fn index_shared(&self) -> Arc<ShardedReferenceIndex> {
        Arc::clone(&self.index)
    }

    /// The reference genome.
    pub fn genome(&self) -> &Genome {
        &self.genome
    }

    /// Fresh chainer pair (forward, reverse) for incremental chunk-based
    /// mapping.
    pub fn new_chainers(&self) -> (IncrementalChainer, IncrementalChainer) {
        (
            IncrementalChainer::new(self.params.chain),
            IncrementalChainer::new(self.params.chain),
        )
    }

    /// Sketches `seq` (a basecalled chunk or a whole read) and seeds its
    /// minimizers, offsetting query positions by `qpos_offset`.
    ///
    /// Convenience wrapper over [`Mapper::sketch_and_seed_into`]; hot loops
    /// should own a [`SeedScratch`] and a reusable [`SeedBatch`] instead.
    pub fn sketch_and_seed(&self, seq: &DnaSeq, qpos_offset: RefPos) -> (SeedBatch, usize) {
        let mut batch = SeedBatch::default();
        let n = self.sketch_and_seed_into(seq, qpos_offset, &mut SeedScratch::new(), &mut batch);
        (batch, n)
    }

    /// Sketches `seq` and seeds its minimizers into `batch` (cleared first),
    /// reusing `scratch` for all intermediate buffers. Returns the number of
    /// minimizers extracted.
    pub fn sketch_and_seed_into(
        &self,
        seq: &DnaSeq,
        qpos_offset: RefPos,
        scratch: &mut SeedScratch,
        batch: &mut SeedBatch,
    ) -> usize {
        minimizers_into(
            seq,
            self.params.k,
            self.params.w,
            &mut scratch.sketch,
            &mut scratch.mins,
        );
        seed_batch_into(&self.index, &scratch.mins, qpos_offset, batch);
        scratch.mins.len()
    }

    /// Completes a mapping from filled chainers: picks the best strand/chain,
    /// aligns the query against the chain's reference window, and applies the
    /// unmapped thresholds.
    ///
    /// Returns the (optional) mapping, the best chain score, and the number
    /// of alignment DP cells spent.
    pub fn finalize_mapping(
        &self,
        query: &DnaSeq,
        forward: &IncrementalChainer,
        reverse: &IncrementalChainer,
    ) -> (Option<Mapping>, f64, usize) {
        let fwd_score = forward.best_score();
        let rev_score = reverse.best_score();
        let best_score = fwd_score.max(rev_score);
        if best_score < self.params.min_chain_score || query.is_empty() {
            return (None, best_score, 0);
        }
        let (chainer, strand, other_best) = if fwd_score >= rev_score {
            (forward, Strand::Forward, rev_score)
        } else {
            (reverse, Strand::Reverse, fwd_score)
        };
        let chain = chainer.best_chain().expect("score > 0 implies a chain");
        let anchors = chainer.anchors();
        let first = anchors[*chain.anchor_indices.first().expect("non-empty chain")];
        let last = anchors[*chain.anchor_indices.last().expect("non-empty chain")];

        // Extrapolate the chain to the query ends to get the reference
        // window, in chain coordinates. Forward chain coordinates carry the
        // index's base offset; reverse chain coordinates are offset-free (the
        // `coord_end - k - pos` transform cancels the offset), so each strand
        // clamps to its own coordinate bounds.
        let o = self.index.base_offset() as i64;
        let g = self.genome.len() as i64;
        let k = self.params.k as i64;
        let qlen = query.len() as i64;
        let (c_lo, c_hi) = match strand {
            Strand::Forward => (o, o + g),
            Strand::Reverse => (0, g),
        };
        let wstart = (first.rpos as i64 - first.qpos as i64).clamp(c_lo, c_hi);
        let wend = (last.rpos as i64 + k + (qlen - last.qpos as i64)).clamp(c_lo, c_hi);
        if wend <= wstart {
            return (None, best_score, 0);
        }
        let wlen = (wend - wstart) as usize;

        // Extract the window sequence (chain coordinates are RC-genome
        // coordinates on the reverse strand).
        let window = match strand {
            Strand::Forward => self.genome.sequence().subseq((wstart - o) as usize, wlen),
            Strand::Reverse => self
                .genome
                .sequence()
                .subseq((g - wend) as usize, wlen)
                .reverse_complement(),
        };

        // Band: centre on the chain's median diagonal, cover its spread.
        let diags: Vec<i64> = chain
            .anchor_indices
            .iter()
            .map(|&i| anchors[i].rpos as i64 - wstart - anchors[i].qpos as i64)
            .collect();
        let (dmin, dmax) = diags
            .iter()
            .fold((i64::MAX, i64::MIN), |(lo, hi), &d| (lo.min(d), hi.max(d)));
        let center = (dmin + dmax) / 2;
        let halfwidth = ((dmax - dmin) / 2) as usize + self.params.band_margin + query.len() / 20;

        let alignment: Alignment =
            banded_global(query, &window, &self.params.align, center, halfwidth);
        let cells = alignment.cells;
        if alignment.identity() < self.params.min_identity {
            return (None, best_score, cells);
        }

        // Second-best chain score for MAPQ: the best competitor is either the
        // other strand's best chain or a same-strand chain at another locus.
        let exclusion_halo = query.len() as RefPos;
        let lo = (wstart as RefPos).saturating_sub(exclusion_halo);
        let hi = (wend as RefPos).saturating_add(exclusion_halo);
        let second = other_best.max(chainer.best_score_outside(lo..hi));
        let mapq = compute_mapq(chain.score, second, chain.anchor_indices.len());

        // Report the window in forward-genome coordinates (offset included).
        let (ref_start, ref_end) = match strand {
            Strand::Forward => (wstart as usize, wend as usize),
            Strand::Reverse => ((o + g - wend) as usize, (o + g - wstart) as usize),
        };

        let mapping = Mapping {
            ref_name: None,
            ref_start,
            ref_end,
            strand,
            chain_score: chain.score,
            align_score: alignment.score,
            identity: alignment.identity(),
            mapq,
            cigar: alignment.cigar,
        };
        (Some(mapping), best_score, cells)
    }

    /// Maps a whole read through the conventional (non-chunked) flow with a
    /// fresh workspace.
    ///
    /// Convenience wrapper over [`Mapper::map_with`]; hot loops should own
    /// the scratch buffers and chainer pair and pass them in.
    pub fn map(&self, query: &DnaSeq) -> MappingResult {
        let (mut fwd, mut rev) = self.new_chainers();
        self.map_with(
            query,
            &mut SeedScratch::new(),
            &mut SeedBatch::default(),
            &mut fwd,
            &mut rev,
        )
    }

    /// Maps a whole read through the conventional flow, reusing caller-owned
    /// buffers: `scratch`/`batch` for sketching and seeding, and a chainer
    /// pair (reset here) for the DP. Results are identical to
    /// [`Mapper::map`]; only allocation behaviour differs.
    pub fn map_with(
        &self,
        query: &DnaSeq,
        scratch: &mut SeedScratch,
        batch: &mut SeedBatch,
        fwd: &mut IncrementalChainer,
        rev: &mut IncrementalChainer,
    ) -> MappingResult {
        fwd.reset();
        rev.reset();
        let mut counters = MappingCounters::default();
        let n_mins = self.sketch_and_seed_into(query, 0, scratch, batch);
        counters.minimizers = n_mins;
        counters.seed_queries = batch.queries;
        counters.anchors = batch.hits;
        fwd.extend(&batch.forward);
        rev.extend(&batch.reverse);
        counters.chain_evals = fwd.dp_evaluations() + rev.dp_evaluations();
        let (mapping, best_chain_score, align_cells) = self.finalize_mapping(query, fwd, rev);
        counters.align_cells = align_cells;
        MappingResult {
            mapping,
            best_chain_score,
            counters,
        }
    }
}

/// minimap2-inspired mapping quality from best/second chain scores and chain
/// length, spanning the full advertised 0–60 range: 60 for a long chain with
/// no competitor, 0 for a tied competitor, scaled linearly in between by the
/// second/best ratio and a short-chain penalty.
fn compute_mapq(best: f64, second: f64, chain_len: usize) -> u8 {
    if best <= 0.0 {
        return 0;
    }
    let ratio = (second / best).clamp(0.0, 1.0);
    let len_factor = (chain_len as f64 / 10.0).min(1.0);
    (60.0 * (1.0 - ratio) * len_factor).round().clamp(0.0, 60.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::rng::seeded;
    use genpip_genomics::{ErrorModel, GenomeBuilder};

    fn mapper(n: usize, seed: u64) -> Mapper {
        let genome = GenomeBuilder::new(n).seed(seed).build();
        Mapper::build(&genome, MapperParams::default())
    }

    #[test]
    fn exact_substring_maps_to_its_origin() {
        let m = mapper(50_000, 1);
        for start in [0usize, 12_345, 49_000] {
            let len = 900.min(50_000 - start);
            let q = m.genome().sequence().subseq(start, len);
            let result = m.map(&q);
            let mapping = result.mapping.expect("exact substring must map");
            assert_eq!(mapping.strand, Strand::Forward);
            assert!(
                mapping.ref_start.abs_diff(start) < 30,
                "start {start} mapped to {}",
                mapping.ref_start
            );
            assert!(mapping.identity > 0.98);
            assert!(mapping.mapq > 10);
        }
    }

    #[test]
    fn reverse_complement_substring_maps_reverse() {
        let m = mapper(50_000, 2);
        let start = 20_000;
        let q = m
            .genome()
            .sequence()
            .subseq(start, 800)
            .reverse_complement();
        let result = m.map(&q);
        let mapping = result.mapping.expect("rc substring must map");
        assert_eq!(mapping.strand, Strand::Reverse);
        assert!(
            mapping.ref_start.abs_diff(start) < 30,
            "mapped to {} expected ~{start}",
            mapping.ref_start
        );
        assert!(mapping.identity > 0.98);
    }

    #[test]
    fn noisy_read_still_maps() {
        let m = mapper(50_000, 3);
        let mut rng = seeded(4);
        let start = 30_000;
        let truth = m.genome().sequence().subseq(start, 1_500);
        let (noisy, _) = ErrorModel::with_total_rate(0.12).apply(&truth, &mut rng);
        let result = m.map(&noisy);
        let mapping = result.mapping.expect("12% error read must map");
        assert!(mapping.ref_start.abs_diff(start) < 60);
        assert!(mapping.identity > 0.8, "identity {}", mapping.identity);
    }

    #[test]
    fn alien_read_is_unmapped() {
        let m = mapper(50_000, 5);
        let alien = GenomeBuilder::new(1_200)
            .seed(777)
            .build()
            .sequence()
            .clone();
        let result = m.map(&alien);
        assert!(result.mapping.is_none());
        assert!(result.best_chain_score < m.params().min_chain_score);
    }

    #[test]
    fn empty_read_is_unmapped() {
        let m = mapper(10_000, 6);
        let result = m.map(&DnaSeq::new());
        assert!(result.mapping.is_none());
        assert_eq!(result.counters.anchors, 0);
    }

    #[test]
    fn chunked_mapping_matches_whole_read_mapping() {
        // Drive the incremental API exactly as GenPIP's CP does and compare
        // with Mapper::map.
        let m = mapper(40_000, 7);
        let start = 11_000;
        let q = m.genome().sequence().subseq(start, 1_200);
        let (mut fwd, mut rev) = m.new_chainers();
        let chunk = 300;
        let mut offset = 0usize;
        while offset < q.len() {
            let len = chunk.min(q.len() - offset);
            let part = q.subseq(offset, len);
            let (batch, _) = m.sketch_and_seed(&part, offset as RefPos);
            fwd.extend(&batch.forward);
            rev.extend(&batch.reverse);
            offset += len;
        }
        let (mapping, _, _) = m.finalize_mapping(&q, &fwd, &rev);
        let mapping = mapping.expect("chunked mapping must succeed");
        let whole = m.map(&q).mapping.unwrap();
        assert_eq!(mapping.strand, whole.strand);
        assert!(mapping.ref_start.abs_diff(whole.ref_start) < 40);
    }

    #[test]
    fn repeat_mapping_gets_low_mapq() {
        // A genome that contains the same unit twice far apart: a read from
        // the unit is ambiguous and must get a low MAPQ.
        let unit = GenomeBuilder::new(2_000)
            .seed(8)
            .repeat_fraction(0.0)
            .build();
        let mut seq = GenomeBuilder::new(10_000)
            .seed(9)
            .repeat_fraction(0.0)
            .build()
            .sequence()
            .clone();
        seq.extend_from_seq(unit.sequence());
        seq.extend_from_seq(
            GenomeBuilder::new(10_000)
                .seed(10)
                .repeat_fraction(0.0)
                .build()
                .sequence(),
        );
        seq.extend_from_seq(unit.sequence());
        seq.extend_from_seq(
            GenomeBuilder::new(10_000)
                .seed(11)
                .repeat_fraction(0.0)
                .build()
                .sequence(),
        );
        let genome = genpip_genomics::Genome::from_seq("dup", seq);
        let m = Mapper::build(&genome, MapperParams::default());
        let q = unit.sequence().subseq(500, 800);
        let result = m.map(&q);
        let mapping = result.mapping.expect("repeat read still maps somewhere");
        assert!(
            mapping.mapq <= 10,
            "ambiguous read got mapq {}",
            mapping.mapq
        );

        // A unique read keeps a high MAPQ (the 0–60 scale puts an
        // uncontested long chain well above the ambiguous band).
        let uq = genome.sequence().subseq(3_000, 800);
        let unique = m.map(&uq).mapping.unwrap();
        assert!(unique.mapq > 30, "unique read got mapq {}", unique.mapq);
    }

    #[test]
    fn mapping_results_are_bit_identical_across_shard_counts() {
        let genome = GenomeBuilder::new(60_000).seed(20).build();
        let single = Mapper::build(&genome, MapperParams::default());
        let mut rng = seeded(21);
        let mut queries: Vec<DnaSeq> = Vec::new();
        for start in [0usize, 14_000, 31_000, 58_000] {
            let len = 1_000.min(60_000 - start);
            let truth = genome.sequence().subseq(start, len);
            queries.push(truth.clone());
            queries.push(truth.reverse_complement());
            let (noisy, _) = ErrorModel::with_total_rate(0.1).apply(&truth, &mut rng);
            queries.push(noisy);
        }
        queries.push(GenomeBuilder::new(900).seed(555).build().sequence().clone());
        for shards in [Shards::Fixed(2), Shards::Fixed(7), Shards::Auto] {
            let params = MapperParams {
                shards,
                ..MapperParams::default()
            };
            let sharded = Mapper::build(&genome, params);
            for (i, q) in queries.iter().enumerate() {
                assert_eq!(
                    sharded.map(q),
                    single.map(q),
                    "{shards:?}: query {i} diverged"
                );
            }
        }
    }

    #[test]
    fn global_masking_keeps_sharded_mapping_identical_on_heavy_repeats() {
        // A 400 bp unit repeated 140× exceeds the default cap of 128
        // globally, while each of 7 shards holds only ~20 occurrences: a
        // per-shard mask would resurrect anchors the monolithic index
        // suppresses, changing mapping results.
        let unit = GenomeBuilder::new(400)
            .seed(22)
            .repeat_fraction(0.0)
            .build();
        let mut seq = genpip_genomics::DnaSeq::new();
        for _ in 0..140 {
            seq.extend_from_seq(unit.sequence());
        }
        seq.extend_from_seq(
            GenomeBuilder::new(20_000)
                .seed(23)
                .repeat_fraction(0.0)
                .build()
                .sequence(),
        );
        let genome = genpip_genomics::Genome::from_seq("heavy-repeats", seq);
        let single = Mapper::build(&genome, MapperParams::default());
        let params = MapperParams {
            shards: Shards::Fixed(7),
            ..MapperParams::default()
        };
        let sharded = Mapper::build(&genome, params);
        assert!(
            sharded.index().masked_keys() > 0,
            "repeat genome must mask minimizers globally"
        );
        let repeat_read = unit.sequence().subseq(20, 360);
        let unique_read = genome.sequence().subseq(140 * 400 + 5_000, 900);
        for q in [&repeat_read, &unique_read] {
            assert_eq!(sharded.map(q), single.map(q));
        }
    }

    #[test]
    fn beyond_4gbp_offset_reference_builds_and_maps() {
        // The acceptance scenario for genuinely unbounded references: a
        // coordinate space starting past 4 Gbp builds, and every mapping —
        // forward, reverse, noisy — is the offset-0 mapping shifted by
        // exactly the offset, with all non-coordinate fields bit-identical.
        let genome = GenomeBuilder::new(50_000).seed(30).build();
        let offset: RefPos = 5_000_000_000;
        let plain = Mapper::build(&genome, MapperParams::default());
        let shifted = Mapper::build(
            &genome,
            MapperParams {
                base_offset: offset,
                shards: Shards::Fixed(3),
                ..MapperParams::default()
            },
        );
        let mut rng = seeded(31);
        let mut queries = Vec::new();
        for start in [0usize, 17_000, 49_000] {
            let len = 900.min(50_000 - start);
            let truth = genome.sequence().subseq(start, len);
            queries.push(truth.clone());
            queries.push(truth.reverse_complement());
            let (noisy, _) = ErrorModel::with_total_rate(0.1).apply(&truth, &mut rng);
            queries.push(noisy);
        }
        for (i, q) in queries.iter().enumerate() {
            let base = plain.map(q);
            let moved = shifted.map(q);
            assert_eq!(moved.best_chain_score, base.best_chain_score, "query {i}");
            assert_eq!(moved.counters, base.counters, "query {i}");
            match (base.mapping, moved.mapping) {
                (None, None) => {}
                (Some(b), Some(m)) => {
                    assert_eq!(m.ref_start, b.ref_start + offset as usize, "query {i}");
                    assert_eq!(m.ref_end, b.ref_end + offset as usize, "query {i}");
                    assert!(m.ref_end > u32::MAX as usize);
                    assert_eq!(
                        Mapping {
                            ref_start: b.ref_start,
                            ref_end: b.ref_end,
                            ..m
                        },
                        b,
                        "query {i}: non-coordinate fields diverged"
                    );
                }
                (b, m) => panic!("query {i}: mapped-ness diverged ({b:?} vs {m:?})"),
            }
        }
    }

    #[test]
    fn counters_populate() {
        let m = mapper(30_000, 12);
        let q = m.genome().sequence().subseq(5_000, 1_000);
        let r = m.map(&q);
        let c = r.counters;
        assert!(c.minimizers > 50);
        assert_eq!(c.seed_queries, c.minimizers);
        assert!(c.anchors >= 50);
        assert!(c.chain_evals > 0);
        assert!(c.align_cells > 0);
        let mut acc = MappingCounters::default();
        acc.add(&c);
        acc.add(&c);
        assert_eq!(acc.anchors, 2 * c.anchors);
    }

    #[test]
    fn mapq_formula_behaviour() {
        assert_eq!(compute_mapq(0.0, 0.0, 5), 0);
        assert_eq!(compute_mapq(100.0, 100.0, 20), 0);
        // An uncontested long chain reaches the top of the advertised range.
        assert_eq!(compute_mapq(100.0, 0.0, 20), 60);
        assert_eq!(compute_mapq(100.0, 50.0, 20), 30);
        assert!(compute_mapq(100.0, 50.0, 20) > 0);
        assert!(compute_mapq(100.0, 0.0, 2) < compute_mapq(100.0, 0.0, 20));
        // The formula never escapes 0–60 even for pathological inputs.
        assert!(compute_mapq(1.0, -50.0, 1_000) <= 60);
        assert_eq!(compute_mapq(100.0, 200.0, 20), 0);
    }
}
