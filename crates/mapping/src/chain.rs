//! Chaining: dynamic programming over anchors.
//!
//! The paper's Figure 1 ⓒ: given the anchors from seeding, find chains of
//! colinear anchors whose spacing is consistent between query and reference,
//! scoring each chain with minimap2's gap-cost recurrence. The chaining
//! *score* is central to GenPIP: the read-mapping controller compares it to
//! the `θ_cm` threshold both for whole reads and — in the ER-CMR early
//! rejection — for assembled groups of chunks.
//!
//! [`IncrementalChainer`] implements the DP so that anchors can be appended
//! in query-position order, which is exactly how GenPIP's chunk-based
//! pipeline produces them: each basecalled chunk contributes anchors with
//! strictly higher query positions, and the DP extends without recomputing
//! earlier rows (paper Section 3.1: "the chaining step can work on the
//! output of seeding while the seeding step processes the next chunk").

use crate::seed::Anchor;
use crate::RefPos;

/// Chaining-score parameters (minimap2-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainParams {
    /// Minimizer k-mer length (full credit for a gap-free extension).
    pub k: usize,
    /// Maximum per-axis gap between chained anchors.
    pub max_gap: RefPos,
    /// Maximum number of predecessors examined per anchor (DP lookback).
    pub lookback: usize,
    /// Linear gap-cost coefficient (minimap2 uses `0.01 · k`).
    pub gap_linear: f64,
}

impl ChainParams {
    /// minimap2-like defaults for a minimizer length of `k`.
    pub fn for_k(k: usize) -> ChainParams {
        ChainParams {
            k,
            max_gap: 5_000,
            lookback: 64,
            gap_linear: 0.01 * k as f64,
        }
    }

    /// Score contribution of extending a chain from anchor `j` to anchor `i`
    /// (both in chain coordinates), or `None` if the pair cannot chain.
    pub fn step_score(&self, from: Anchor, to: Anchor) -> Option<f64> {
        if to.qpos <= from.qpos || to.rpos <= from.rpos {
            return None;
        }
        let dq = to.qpos - from.qpos;
        let dr = to.rpos - from.rpos;
        if dq > self.max_gap || dr > self.max_gap {
            return None;
        }
        let gap = dq.abs_diff(dr);
        let matched = self.k.min(dq as usize).min(dr as usize) as f64;
        let gap_cost = if gap == 0 {
            0.0
        } else {
            self.gap_linear * gap as f64 + 0.5 * ((gap + 1) as f64).log2()
        };
        Some(matched - gap_cost)
    }
}

impl Default for ChainParams {
    fn default() -> ChainParams {
        ChainParams::for_k(15)
    }
}

/// A scored chain: indices into the chainer's anchor array, ascending qpos.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Chain score (the quantity thresholded by `θ_cm`).
    pub score: f64,
    /// Indices of the chained anchors in the chainer's anchor array.
    pub anchor_indices: Vec<usize>,
}

/// Incremental chaining DP.
///
/// # Example
///
/// ```
/// use genpip_mapping::{Anchor, ChainParams, IncrementalChainer};
///
/// let mut chainer = IncrementalChainer::new(ChainParams::for_k(15));
/// // A perfectly colinear run of anchors 20 bp apart.
/// let anchors: Vec<Anchor> =
///     (0..10).map(|i| Anchor { qpos: i * 20, rpos: 1_000 + i * 20 }).collect();
/// chainer.extend(&anchors);
/// assert!(chainer.best_score() > 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalChainer {
    params: ChainParams,
    anchors: Vec<Anchor>,
    score: Vec<f64>,
    pred: Vec<Option<usize>>,
    dp_evaluations: usize,
    sort_buf: Vec<Anchor>,
}

impl IncrementalChainer {
    /// Creates an empty chainer.
    pub fn new(params: ChainParams) -> IncrementalChainer {
        IncrementalChainer {
            params,
            anchors: Vec::new(),
            score: Vec::new(),
            pred: Vec::new(),
            dp_evaluations: 0,
            sort_buf: Vec::new(),
        }
    }

    /// Clears all per-read state, keeping buffer capacity — a reused chainer
    /// starts the next read without reallocating.
    pub fn reset(&mut self) {
        self.anchors.clear();
        self.score.clear();
        self.pred.clear();
        self.dp_evaluations = 0;
    }

    /// Appends a batch of anchors and extends the DP.
    ///
    /// Within the batch, anchors may arrive in any order (they are sorted by
    /// `(qpos, rpos)` internally). Batches must arrive in non-decreasing
    /// query-position order, which chunk-sequential processing guarantees;
    /// violating that loses chaining opportunities but never produces an
    /// invalid chain.
    pub fn extend(&mut self, batch: &[Anchor]) {
        let mut sorted = std::mem::take(&mut self.sort_buf);
        sorted.clear();
        sorted.extend_from_slice(batch);
        sorted.sort_unstable_by_key(|a| (a.qpos, a.rpos));
        for &anchor in &sorted {
            let i = self.anchors.len();
            self.anchors.push(anchor);
            let mut best = self.params.k as f64; // chain of one anchor
            let mut best_pred = None;
            let lo = i.saturating_sub(self.params.lookback);
            for j in (lo..i).rev() {
                self.dp_evaluations += 1;
                if let Some(step) = self.params.step_score(self.anchors[j], anchor) {
                    let cand = self.score[j] + step;
                    if cand > best {
                        best = cand;
                        best_pred = Some(j);
                    }
                }
            }
            self.score.push(best);
            self.pred.push(best_pred);
        }
        self.sort_buf = sorted;
    }

    /// All anchors added so far.
    pub fn anchors(&self) -> &[Anchor] {
        &self.anchors
    }

    /// Number of DP predecessor evaluations performed — the workload counter
    /// the PIM DP-unit model charges for.
    pub fn dp_evaluations(&self) -> usize {
        self.dp_evaluations
    }

    /// The best chain score so far (0 if no anchors).
    pub fn best_score(&self) -> f64 {
        self.score.iter().cloned().fold(0.0, f64::max)
    }

    /// Traces back the best chain, if any anchor exists.
    pub fn best_chain(&self) -> Option<Chain> {
        let (mut i, &score) = self
            .score
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))?;
        let mut indices = vec![i];
        while let Some(j) = self.pred[i] {
            indices.push(j);
            i = j;
        }
        indices.reverse();
        Some(Chain {
            score,
            anchor_indices: indices,
        })
    }

    /// The best chain score among anchors whose (chain-coordinate) reference
    /// position lies outside `excluded`: the "second-best chain" used for
    /// MAPQ estimation.
    ///
    /// Accepts any range form over [`RefPos`] (`lo..hi`, `..`, `lo..=hi`, …),
    /// so "exclude everything" is the type-parametric full range `..` — no
    /// caller has to spell a width-specific sentinel like `0..u32::MAX`.
    pub fn best_score_outside<R: std::ops::RangeBounds<RefPos>>(&self, excluded: R) -> f64 {
        self.score
            .iter()
            .zip(&self.anchors)
            .filter(|(_, a)| !excluded.contains(&a.rpos))
            .map(|(s, _)| *s)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colinear(n: RefPos, spacing: RefPos, q0: RefPos, r0: RefPos) -> Vec<Anchor> {
        (0..n)
            .map(|i| Anchor {
                qpos: q0 + i * spacing,
                rpos: r0 + i * spacing,
            })
            .collect()
    }

    #[test]
    fn empty_chainer() {
        let c = IncrementalChainer::new(ChainParams::default());
        assert_eq!(c.best_score(), 0.0);
        assert!(c.best_chain().is_none());
        assert_eq!(c.dp_evaluations(), 0);
    }

    #[test]
    fn single_anchor_scores_k() {
        let mut c = IncrementalChainer::new(ChainParams::for_k(15));
        c.extend(&[Anchor { qpos: 5, rpos: 100 }]);
        assert_eq!(c.best_score(), 15.0);
        assert_eq!(c.best_chain().unwrap().anchor_indices, vec![0]);
    }

    #[test]
    fn colinear_anchors_chain_fully() {
        let mut c = IncrementalChainer::new(ChainParams::for_k(15));
        let anchors = colinear(20, 20, 0, 1_000);
        c.extend(&anchors);
        let chain = c.best_chain().unwrap();
        assert_eq!(chain.anchor_indices.len(), 20);
        // Score: k for the first anchor + min(k, 20) per extension, no gaps.
        let expected = 15.0 + 19.0 * 15.0;
        assert!((chain.score - expected).abs() < 1e-9, "{}", chain.score);
    }

    #[test]
    fn gap_reduces_score() {
        let p = ChainParams::for_k(15);
        let a = Anchor { qpos: 0, rpos: 0 };
        let aligned = Anchor {
            qpos: 100,
            rpos: 100,
        };
        let gapped = Anchor {
            qpos: 100,
            rpos: 160,
        };
        let s_aligned = p.step_score(a, aligned).unwrap();
        let s_gapped = p.step_score(a, gapped).unwrap();
        assert!(s_aligned > s_gapped);
        assert!((s_aligned - 15.0).abs() < 1e-9);
    }

    #[test]
    fn non_colinear_anchors_do_not_chain() {
        let p = ChainParams::for_k(15);
        let a = Anchor {
            qpos: 100,
            rpos: 100,
        };
        assert!(p
            .step_score(
                a,
                Anchor {
                    qpos: 50,
                    rpos: 200
                }
            )
            .is_none());
        assert!(p
            .step_score(
                a,
                Anchor {
                    qpos: 200,
                    rpos: 50
                }
            )
            .is_none());
        assert!(p
            .step_score(
                a,
                Anchor {
                    qpos: 100,
                    rpos: 200
                }
            )
            .is_none());
    }

    #[test]
    fn max_gap_is_enforced() {
        let p = ChainParams::for_k(15);
        let a = Anchor { qpos: 0, rpos: 0 };
        assert!(p
            .step_score(
                a,
                Anchor {
                    qpos: 10_000,
                    rpos: 10_000
                }
            )
            .is_none());
    }

    #[test]
    fn incremental_equals_batch() {
        // Feeding anchors chunk by chunk must give the same DP result as one
        // batch, since chunks arrive in qpos order.
        let anchors = colinear(30, 25, 0, 500);
        let mut whole = IncrementalChainer::new(ChainParams::for_k(15));
        whole.extend(&anchors);
        let mut chunked = IncrementalChainer::new(ChainParams::for_k(15));
        for part in anchors.chunks(7) {
            chunked.extend(part);
        }
        assert_eq!(whole.best_score(), chunked.best_score());
        assert_eq!(
            whole.best_chain().unwrap().anchor_indices,
            chunked.best_chain().unwrap().anchor_indices
        );
    }

    #[test]
    fn decoy_anchors_do_not_join_the_chain() {
        let mut c = IncrementalChainer::new(ChainParams::for_k(15));
        let mut anchors = colinear(10, 30, 0, 1_000);
        // Decoys at a far-away reference locus.
        anchors.push(Anchor {
            qpos: 100,
            rpos: 50_000,
        });
        anchors.push(Anchor {
            qpos: 130,
            rpos: 50_030,
        });
        c.extend(&anchors);
        let chain = c.best_chain().unwrap();
        assert_eq!(chain.anchor_indices.len(), 10);
        for &i in &chain.anchor_indices {
            assert!(c.anchors()[i].rpos < 2_000);
        }
    }

    #[test]
    fn best_score_outside_excludes_primary_locus() {
        let mut c = IncrementalChainer::new(ChainParams::for_k(15));
        c.extend(&colinear(10, 30, 0, 1_000)); // primary
        c.extend(&colinear(4, 30, 300, 50_000)); // secondary
        let primary = c.best_score();
        let secondary = c.best_score_outside(0..10_000);
        assert!(primary > secondary);
        assert!(secondary > 0.0);
        // The full range excludes everything, regardless of coordinate width.
        assert_eq!(c.best_score_outside(..), 0.0);
        // And a chain at a beyond-u32 locus is excludable like any other.
        let mut far = IncrementalChainer::new(ChainParams::for_k(15));
        far.extend(&colinear(10, 30, 0, 5_000_000_000));
        assert!(far.best_score() > 0.0);
        assert_eq!(far.best_score_outside(5_000_000_000..5_000_001_000), 0.0);
    }

    #[test]
    fn dp_evaluations_grow_with_anchors() {
        let mut c = IncrementalChainer::new(ChainParams::for_k(15));
        c.extend(&colinear(50, 20, 0, 0));
        let evals = c.dp_evaluations();
        assert!(evals > 0);
        // With lookback 64 and 50 anchors: sum_{i<50} i evaluations.
        assert_eq!(evals, (0..50).sum::<usize>());
    }

    #[test]
    fn chain_score_is_admissible() {
        // A chain's score never exceeds k per anchor (each step credits at
        // most k matched bases, minus non-negative gap costs).
        let mut c = IncrementalChainer::new(ChainParams::for_k(15));
        let mut anchors = colinear(25, 18, 0, 100);
        anchors.extend(colinear(25, 31, 450, 700));
        c.extend(&anchors);
        let chain = c.best_chain().unwrap();
        assert!(chain.score <= 15.0 * chain.anchor_indices.len() as f64 + 1e-9);
    }
}
