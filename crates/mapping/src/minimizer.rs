//! `(w, k)` minimizer sketching.
//!
//! A minimizer is the k-mer with the smallest hash value in each window of
//! `w` consecutive k-mers (Roberts et al. 2004, the sketch minimap2 builds
//! on). Hashing canonical k-mers makes the sketch strand-symmetric;
//! winnowing guarantees that any two sequences sharing a window-length
//! substring share a minimizer, which is what makes seeding complete.

use crate::RefPos;
use genpip_genomics::{DnaSeq, Kmer, KmerIter};

/// One selected minimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Minimizer {
    /// Invertible hash of the canonical k-mer (the hash-table key).
    pub hash: u64,
    /// Position of the k-mer's first base in the sequence.
    ///
    /// [`RefPos`] (64-bit), so the sketchable sequence length is bounded by
    /// addressable memory, not the old 4 Gbp `u32` horizon.
    pub pos: RefPos,
    /// `true` if the canonical k-mer is the reverse complement of the
    /// sequence's forward k-mer at `pos`.
    pub reverse: bool,
}

/// Thomas Wang / minimap2-style invertible 64-bit integer hash.
///
/// Invertibility matters: it guarantees distinct k-mers never collide, so the
/// hash table needs no key verification — mirroring the exact-match
/// semantics of the CAM lookup in GenPIP's in-memory seeding unit.
#[inline]
pub fn hash64(key: u64) -> u64 {
    let mut k = key;
    k = (!k).wrapping_add(k << 21);
    k ^= k >> 24;
    k = k.wrapping_add(k << 3).wrapping_add(k << 8);
    k ^= k >> 14;
    k = k.wrapping_add(k << 2).wrapping_add(k << 4);
    k ^= k >> 28;
    k = k.wrapping_add(k << 31);
    k
}

/// Extracts the `(w, k)` minimizers of `seq`, in position order.
///
/// Palindromic k-mers (their own reverse complement) are skipped because
/// their strand is ambiguous, following minimap2. Consecutive windows that
/// select the same occurrence yield one entry.
///
/// Returns an empty vector if the sequence has fewer than `k` bases.
///
/// # Panics
///
/// Panics if `k` is outside `1..=32` or `w` is 0.
///
/// # Example
///
/// ```
/// use genpip_genomics::DnaSeq;
/// use genpip_mapping::minimizers;
///
/// let seq: DnaSeq = "ACGTTGCATTGCAGGCATTA".parse()?;
/// let mins = minimizers(&seq, 5, 4);
/// assert!(!mins.is_empty());
/// // Positions are strictly increasing.
/// assert!(mins.windows(2).all(|m| m[0].pos < m[1].pos));
/// # Ok::<(), genpip_genomics::base::ParseBaseError>(())
/// ```
pub fn minimizers(seq: &DnaSeq, k: usize, w: usize) -> Vec<Minimizer> {
    let mut out = Vec::new();
    minimizers_into(seq, k, w, &mut MinimizerScratch::default(), &mut out);
    out
}

/// Reusable winnowing working memory for [`minimizers_into`]; one instance
/// per worker keeps steady-state sketching free of per-chunk allocations.
#[derive(Debug, Clone, Default)]
pub struct MinimizerScratch {
    hashed: Vec<Option<(u64, bool)>>,
    deque: std::collections::VecDeque<(usize, u64, bool)>,
}

/// Extracts the `(w, k)` minimizers of `seq` into `out` (cleared first),
/// reusing `scratch` for all intermediate buffers. Behaviour is identical to
/// [`minimizers`]; see its docs for the contract.
pub fn minimizers_into(
    seq: &DnaSeq,
    k: usize,
    w: usize,
    scratch: &mut MinimizerScratch,
    out: &mut Vec<Minimizer>,
) {
    assert!(w >= 1, "window size must be >= 1");
    out.clear();
    // Hash every k-mer (canonical form), skipping palindromes.
    let hashed = &mut scratch.hashed;
    hashed.clear();
    for (_, kmer) in KmerIter::new(seq, k) {
        hashed.push(canonical_hash(kmer));
    }
    if hashed.is_empty() {
        return;
    }

    // Monotone-deque winnowing: for each window of w k-mers pick the entry
    // with the smallest hash (rightmost on ties, the standard choice that
    // guarantees window coverage).
    let deque = &mut scratch.deque;
    deque.clear();
    for (i, h) in hashed.iter().enumerate() {
        if let Some((hash, rev)) = *h {
            while let Some(&(_, back_hash, _)) = deque.back() {
                if back_hash >= hash {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back((i, hash, rev));
        }
        // Evict entries that slid out of the window ending at i.
        while let Some(&(front_i, _, _)) = deque.front() {
            if front_i + w <= i {
                deque.pop_front();
            } else {
                break;
            }
        }
        if i + 1 >= w {
            if let Some(&(pos, hash, rev)) = deque.front() {
                let candidate = Minimizer {
                    hash,
                    pos: pos as RefPos,
                    reverse: rev,
                };
                if out.last() != Some(&candidate) {
                    out.push(candidate);
                }
            }
        }
    }
}

/// Hash of the canonical form of a k-mer, with the strand flag; `None` for
/// palindromes.
#[inline]
pub fn canonical_hash(kmer: Kmer) -> Option<(u64, bool)> {
    let rc = kmer.reverse_complement();
    match kmer.bits().cmp(&rc.bits()) {
        std::cmp::Ordering::Less => Some((hash64(kmer.bits()), false)),
        std::cmp::Ordering::Greater => Some((hash64(rc.bits()), true)),
        std::cmp::Ordering::Equal => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::GenomeBuilder;

    fn seq(n: usize, s: u64) -> DnaSeq {
        GenomeBuilder::new(n)
            .seed(s)
            .repeat_fraction(0.0)
            .build()
            .sequence()
            .clone()
    }

    #[test]
    fn hash64_is_injective_on_a_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(hash64(i)), "collision at {i}");
        }
    }

    #[test]
    fn positions_strictly_increase() {
        let s = seq(5_000, 1);
        let mins = minimizers(&s, 15, 10);
        assert!(mins.windows(2).all(|m| m[0].pos < m[1].pos));
    }

    #[test]
    fn every_window_is_covered() {
        // Winnowing invariant: every window of w consecutive k-mers contains
        // at least one selected minimizer (ignoring palindrome-only windows,
        // which are vanishingly rare at k=15).
        let s = seq(3_000, 2);
        let (k, w) = (15, 10);
        let mins = minimizers(&s, k, w);
        let positions: Vec<usize> = mins.iter().map(|m| m.pos as usize).collect();
        let n_kmers = s.len() - k + 1;
        for start in 0..n_kmers.saturating_sub(w - 1) {
            let covered = positions.iter().any(|&p| p >= start && p < start + w);
            assert!(covered, "window at {start} has no minimizer");
        }
    }

    #[test]
    fn density_is_about_two_over_w_plus_one() {
        let s = seq(50_000, 3);
        let (k, w) = (15, 10);
        let mins = minimizers(&s, k, w);
        let density = mins.len() as f64 / (s.len() - k + 1) as f64;
        let expected = 2.0 / (w as f64 + 1.0);
        assert!(
            (density - expected).abs() / expected < 0.25,
            "density {density}, expected ~{expected}"
        );
    }

    #[test]
    fn sketch_is_strand_symmetric() {
        use std::collections::HashSet;
        let s = seq(2_000, 4);
        let rc = s.reverse_complement();
        let fwd: HashSet<u64> = minimizers(&s, 15, 10).iter().map(|m| m.hash).collect();
        let rev: HashSet<u64> = minimizers(&rc, 15, 10).iter().map(|m| m.hash).collect();
        // The hash *sets* must be identical on both strands.
        assert_eq!(fwd, rev);
    }

    #[test]
    fn w_equals_one_selects_every_kmer() {
        let s = seq(300, 5);
        let k = 15;
        let mins = minimizers(&s, k, 1);
        // Every non-palindromic k-mer is selected.
        assert_eq!(mins.len(), s.len() - k + 1);
    }

    #[test]
    fn short_sequence_yields_nothing() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        assert!(minimizers(&s, 15, 10).is_empty());
    }

    #[test]
    fn shared_substring_shares_a_minimizer() {
        // Two sequences sharing a 100 bp substring must share a minimizer
        // from that region (the winnowing guarantee seeding relies on).
        let a = seq(1_000, 6);
        let core = a.subseq(400, 100);
        let mut b = seq(500, 7);
        b.extend_from_seq(&core);
        b.extend_from_seq(&seq(500, 8));
        let (k, w) = (15, 10);
        use std::collections::HashSet;
        let ha: HashSet<u64> = minimizers(&a, k, w)
            .iter()
            .filter(|m| (400..500).contains(&(m.pos as usize)))
            .map(|m| m.hash)
            .collect();
        let hb: HashSet<u64> = minimizers(&b, k, w).iter().map(|m| m.hash).collect();
        assert!(!ha.is_disjoint(&hb));
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        let s: DnaSeq = "ACGTACGTACGT".parse().unwrap();
        let _ = minimizers(&s, 4, 0);
    }
}
