//! Seeding: turning query minimizers into anchors.
//!
//! The paper's Figure 1 ⓑ: each query minimizer is looked up in the
//! reference hash table; every hit produces an *anchor* — a (query position,
//! reference position) pair asserting a k-mer-level match. GenPIP executes
//! this lookup inside its in-memory seeding unit; this module is the
//! functional behaviour, with counters for the hardware model.
//!
//! Lookups go through a [`ShardedReferenceIndex`]: each query minimizer fans
//! out to every shard and the per-shard hit streams arrive pre-merged in
//! global position order, so the anchors — and everything downstream — are
//! bit-identical for every shard count.

use crate::minimizer::Minimizer;
use crate::shard::ShardedReferenceIndex;
use crate::RefPos;

/// Mapping strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strand {
    /// Query matches the reference as-is.
    Forward,
    /// The query's reverse complement matches the reference.
    Reverse,
}

impl std::fmt::Display for Strand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strand::Forward => write!(f, "+"),
            Strand::Reverse => write!(f, "-"),
        }
    }
}

/// A seed match in *chain coordinates*.
///
/// `qpos` is the k-mer's position in the query as sequenced. For
/// forward-strand anchors `rpos` is the k-mer's reference position (including
/// the index's base offset); for reverse-strand anchors it is the position in
/// the *reverse-complemented* reference (`coord_end − k − pos`, an
/// offset-free coordinate). The transform makes colinear matches on either
/// strand satisfy the same "qpos and rpos both increase" criterion, so one
/// chaining implementation serves both strands — and, crucially for GenPIP's
/// chunk-based pipeline, it does not depend on the final read length, which
/// is unknown while chunks are still streaming in. Both fields are
/// [`RefPos`] (64-bit), so no coordinate wraps at the 4 Gbp `u32` horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Anchor {
    /// Query position of the k-mer's first base.
    pub qpos: RefPos,
    /// Strand-transformed reference position (see type docs).
    pub rpos: RefPos,
}

/// Anchors produced by seeding one batch of minimizers, split by strand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeedBatch {
    /// Forward-strand anchors.
    pub forward: Vec<Anchor>,
    /// Reverse-strand anchors (chain coordinates; see [`Anchor`]).
    pub reverse: Vec<Anchor>,
    /// Number of hash-table lookups performed (one per minimizer).
    pub queries: usize,
    /// Total anchors produced.
    pub hits: usize,
}

/// Seeds a batch of query minimizers against the index.
///
/// `qpos_offset` is added to every minimizer position — GenPIP's chunk-based
/// pipeline sketches each basecalled chunk locally and offsets by the bases
/// already emitted for the read.
pub fn seed_batch(
    index: &ShardedReferenceIndex,
    mins: &[Minimizer],
    qpos_offset: RefPos,
) -> SeedBatch {
    let mut batch = SeedBatch::default();
    seed_batch_into(index, mins, qpos_offset, &mut batch);
    batch
}

/// Seeds a batch of query minimizers against the index into `batch`,
/// clearing it first — the anchor vectors keep their capacity, so a reused
/// batch seeds without allocating in steady state.
pub fn seed_batch_into(
    index: &ShardedReferenceIndex,
    mins: &[Minimizer],
    qpos_offset: RefPos,
    batch: &mut SeedBatch,
) {
    let k = index.k() as RefPos;
    // rpos transform for reverse anchors. `coord_end` (not `genome_len as
    // u32`, which silently truncated past 4 Gbp) keeps the subtraction in the
    // index's own coordinate space: `rc_base - (base_offset + pos)` is the
    // offset-free reverse-complement coordinate `genome_len - k - pos`.
    let rc_base = index.coord_end() - k;
    batch.forward.clear();
    batch.reverse.clear();
    batch.queries = 0;
    batch.hits = 0;
    for m in mins {
        batch.queries += 1;
        for hit in index.lookup(m) {
            let qpos = m.pos + qpos_offset;
            // Same canonical strand on query and reference => forward match;
            // opposite => the query matches the reference's other strand.
            if m.reverse == hit.reverse {
                batch.forward.push(Anchor {
                    qpos,
                    rpos: hit.pos,
                });
            } else {
                batch.reverse.push(Anchor {
                    qpos,
                    rpos: rc_base - hit.pos,
                });
            }
            batch.hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer::minimizers;
    use crate::shard::Shards;
    use genpip_genomics::{Genome, GenomeBuilder};

    const K: usize = 15;
    const W: usize = 10;

    fn genome(n: usize, seed: u64) -> Genome {
        GenomeBuilder::new(n).seed(seed).build()
    }

    fn index(g: &Genome) -> ShardedReferenceIndex {
        ShardedReferenceIndex::build(g, K, W, Shards::Single)
    }

    #[test]
    fn exact_substring_seeds_on_diagonal() {
        let g = genome(20_000, 1);
        let idx = index(&g);
        let start = 7_000;
        let query = g.sequence().subseq(start, 600);
        let batch = seed_batch(&idx, &minimizers(&query, K, W), 0);
        assert!(
            batch.forward.len() >= 10,
            "only {} anchors",
            batch.forward.len()
        );
        // Most forward anchors lie on the diagonal rpos - qpos = start.
        let on_diag = batch
            .forward
            .iter()
            .filter(|a| (a.rpos as i64 - a.qpos as i64 - start as i64).abs() < 2)
            .count();
        assert!(
            on_diag as f64 / batch.forward.len() as f64 > 0.8,
            "{on_diag}/{} on diagonal",
            batch.forward.len()
        );
    }

    #[test]
    fn reverse_complement_query_seeds_reverse_colinear() {
        let g = genome(20_000, 2);
        let idx = index(&g);
        let start = 3_000;
        let query = g.sequence().subseq(start, 600).reverse_complement();
        let batch = seed_batch(&idx, &minimizers(&query, K, W), 0);
        assert!(batch.reverse.len() >= 10);
        assert!(batch.forward.len() < batch.reverse.len() / 2);
        // In chain coordinates the reverse anchors must be colinear:
        // rpos - qpos constant.
        let diags: Vec<i64> = batch
            .reverse
            .iter()
            .map(|a| a.rpos as i64 - a.qpos as i64)
            .collect();
        let mode = diags
            .iter()
            .map(|d| diags.iter().filter(|x| (**x - d).abs() < 2).count())
            .max()
            .unwrap();
        assert!(
            mode as f64 / diags.len() as f64 > 0.8,
            "{mode}/{} colinear",
            diags.len()
        );
    }

    #[test]
    fn offset_shifts_query_positions() {
        let g = genome(10_000, 3);
        let idx = index(&g);
        let query = g.sequence().subseq(2_000, 300);
        let mins = minimizers(&query, K, W);
        let a = seed_batch(&idx, &mins, 0);
        let b = seed_batch(&idx, &mins, 1_000);
        assert_eq!(a.forward.len(), b.forward.len());
        for (x, y) in a.forward.iter().zip(&b.forward) {
            assert_eq!(x.qpos + 1_000, y.qpos);
            assert_eq!(x.rpos, y.rpos);
        }
    }

    #[test]
    fn random_query_produces_few_anchors() {
        let g = genome(20_000, 4);
        let idx = index(&g);
        // A query from a *different* genome shares almost no 15-mers.
        let alien = genome(2_000, 999);
        let batch = seed_batch(&idx, &minimizers(alien.sequence(), K, W), 0);
        assert!(
            batch.hits < 5,
            "alien query produced {} anchors",
            batch.hits
        );
        assert!(batch.queries > 100);
    }

    #[test]
    fn fan_out_seeding_is_bit_identical_across_shard_counts() {
        let g = genome(30_000, 6);
        let single = index(&g);
        let query = g.sequence().subseq(9_000, 1_200);
        let mins = minimizers(&query, K, W);
        let reference = seed_batch(&single, &mins, 0);
        assert!(reference.hits > 10);
        for n in [2usize, 5, 16] {
            let sharded = ShardedReferenceIndex::build(&g, K, W, Shards::Fixed(n));
            let batch = seed_batch(&sharded, &mins, 0);
            assert_eq!(batch, reference, "{n} shards diverged");
        }
    }

    #[test]
    fn reverse_complement_positions_survive_the_u32_boundary() {
        // Regression for the old `rc_base = genome_len as u32 - k`, which
        // silently truncated once the coordinate space crossed 4 Gbp. A
        // genome whose coordinate space straddles `u32::MAX` must seed
        // exactly like the same genome at offset 0: reverse-strand chain
        // coordinates are offset-free, forward coordinates shift by the
        // offset — on both sides of the boundary, nothing wraps.
        let g = genome(20_000, 7);
        let offset: RefPos = (u32::MAX as RefPos) - 10_000; // end > u32::MAX
        let at_zero = index(&g);
        let at_offset = ShardedReferenceIndex::build_at(&g, K, W, Shards::Fixed(3), offset);
        assert!(at_offset.coord_end() > u32::MAX as RefPos);
        let start = 12_000; // forward positions of this window cross u32::MAX
        let fwd_query = g.sequence().subseq(start, 800);
        let rc_query = fwd_query.reverse_complement();
        for query in [&fwd_query, &rc_query] {
            let mins = minimizers(query, K, W);
            let base = seed_batch(&at_zero, &mins, 0);
            let moved = seed_batch(&at_offset, &mins, 0);
            assert_eq!(moved.queries, base.queries);
            assert_eq!(moved.hits, base.hits);
            assert_eq!(moved.reverse, base.reverse, "reverse anchors wrapped");
            assert_eq!(moved.forward.len(), base.forward.len());
            for (m, b) in moved.forward.iter().zip(&base.forward) {
                assert_eq!(m.qpos, b.qpos);
                assert_eq!(m.rpos, b.rpos + offset);
            }
        }
    }

    #[test]
    fn counters_are_consistent() {
        let g = genome(10_000, 5);
        let idx = index(&g);
        let query = g.sequence().subseq(1_000, 500);
        let mins = minimizers(&query, K, W);
        let batch = seed_batch(&idx, &mins, 0);
        assert_eq!(batch.queries, mins.len());
        assert_eq!(batch.hits, batch.forward.len() + batch.reverse.len());
    }
}
