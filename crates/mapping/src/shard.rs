//! Sharded reference index: the minimizer table partitioned by position.
//!
//! GenPIP's seeding unit holds the reference hash table in ReRAM CAM/RAM
//! arrays; the scalability story (and follow-on PIM mapping work that
//! partitions DNA indexes across subarrays queried in parallel) requires the
//! table to be split so no single unit — and, in this software model, no
//! single allocation — has to hold the whole genome's index.
//!
//! [`ShardedReferenceIndex`] partitions the genome into `S` contiguous
//! position ranges and builds one [`ReferenceIndex`] per range via
//! [`ReferenceIndex::build_span`] (halo-extended sketching, ownership
//! filtering). A seed lookup fans out to every shard and concatenates the
//! per-shard hit lists in shard order; because shard tables are built in
//! position order and shards are ordered by range, the merged stream is in
//! the exact order a monolithic index produces — so downstream chaining is
//! **bit-identical for every shard count**.
//!
//! Repetitive-minimizer masking uses the **global** occurrence count (summed
//! across shards), not the per-shard count: a minimizer occurring 200 times
//! spread over 8 shards is exactly as repetitive as one occurring 200 times
//! in one shard, and masking per shard would silently change mapping results
//! as the shard count grows.

use crate::index::{RefHit, ReferenceIndex};
use crate::minimizer::Minimizer;
use crate::RefPos;
use genpip_genomics::Genome;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// How many position-range shards a reference index is split into.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Shards {
    /// One monolithic shard — the reference configuration.
    #[default]
    Single,
    /// A fixed shard count (clamped to `1..=`[`Shards::MAX_SHARDS`] at
    /// resolution, so a typo like `--shards 1000000` cannot build a
    /// million-way fan-out or exceed the modeled CAM subarray groups).
    Fixed(usize),
    /// One shard per [`Shards::AUTO_BASES_PER_SHARD`] bases of reference,
    /// capped at [`Shards::MAX_SHARDS`] (the paper's seeding-unit count).
    Auto,
}

impl Shards {
    /// `Auto` target: bases of reference per shard (256 Kbp).
    pub const AUTO_BASES_PER_SHARD: usize = 1 << 18;

    /// Upper bound on the resolved shard count — Table 2's 4096 seeding
    /// units, one CAM subarray group per shard.
    pub const MAX_SHARDS: usize = 4096;

    /// The concrete shard count this setting resolves to for a reference of
    /// `genome_len` bases (always in `1..=`[`Shards::MAX_SHARDS`]).
    pub fn resolve(self, genome_len: usize) -> usize {
        match self {
            Shards::Single => 1,
            Shards::Fixed(n) => n.clamp(1, Self::MAX_SHARDS),
            Shards::Auto => genome_len
                .div_ceil(Self::AUTO_BASES_PER_SHARD)
                .clamp(1, Self::MAX_SHARDS),
        }
    }

    /// Parses a shard-count spelling: `"single"`, `"auto"`, or a count
    /// (e.g. `"4"` → `Fixed(4)`). `None` for anything else, including `"0"`.
    pub fn parse(s: &str) -> Option<Shards> {
        match s.trim().to_ascii_lowercase().as_str() {
            "single" | "1" => Some(Shards::Single),
            "auto" => Some(Shards::Auto),
            n => match n.parse::<usize>() {
                Ok(count) if count > 0 => Some(Shards::Fixed(count)),
                _ => None,
            },
        }
    }
}

/// The reference minimizer index, partitioned into position-range shards
/// with fan-out seeding. See the [module docs](self) for the layout and the
/// bit-identity / global-masking guarantees.
///
/// Positions stored in every shard are **global** forward-strand coordinates:
/// [`RefPos`] (64-bit), starting at the index's
/// [`base_offset`](ShardedReferenceIndex::base_offset). Neither the shard nor
/// the whole reference is capped at the 4 Gbp `u32` horizon any more.
#[derive(Debug, Clone)]
pub struct ShardedReferenceIndex {
    k: usize,
    w: usize,
    genome_len: usize,
    base_offset: RefPos,
    max_occurrences: usize,
    spans: Vec<Range<RefPos>>,
    shards: Vec<ReferenceIndex>,
    /// Hashes whose summed-across-shards occurrence count exceeds the cap.
    masked: HashSet<u64>,
    /// Distinct minimizer hashes across all shards (union, not sum).
    distinct: usize,
    /// (key, location) entries belonging to globally-masked hashes.
    masked_entries: usize,
}

impl ShardedReferenceIndex {
    /// Builds the sharded index of `genome` with minimizer parameters
    /// `(k, w)`, the shard layout named by `shards`, and the default
    /// repetitive-minimizer cap. Use
    /// [`ShardedReferenceIndex::build_with_max_occurrences`] to set a
    /// non-default cap without recomputing the mask twice.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ReferenceIndex::build`].
    pub fn build(genome: &Genome, k: usize, w: usize, shards: Shards) -> ShardedReferenceIndex {
        Self::build_with_max_occurrences(
            genome,
            k,
            w,
            shards,
            ReferenceIndex::DEFAULT_MAX_OCCURRENCES,
        )
    }

    /// [`ShardedReferenceIndex::build`] with the genome's coordinate space
    /// starting at `base_offset`: every stored hit position and every span
    /// bound is `base_offset + position-in-genome`. This is how coordinate
    /// spaces beyond 4 Gbp are exercised (and how slices of a long reference
    /// can be indexed independently) without materializing 4 GB of sequence.
    pub fn build_at(
        genome: &Genome,
        k: usize,
        w: usize,
        shards: Shards,
        base_offset: RefPos,
    ) -> ShardedReferenceIndex {
        Self::build_full(
            genome,
            k,
            w,
            shards,
            ReferenceIndex::DEFAULT_MAX_OCCURRENCES,
            base_offset,
        )
    }

    /// [`ShardedReferenceIndex::build`] with an explicit repetitive cap, so
    /// the global mask is computed once with the final cap.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ReferenceIndex::build`], or if
    /// `cap` is 0.
    pub fn build_with_max_occurrences(
        genome: &Genome,
        k: usize,
        w: usize,
        shards: Shards,
        cap: usize,
    ) -> ShardedReferenceIndex {
        Self::build_full(genome, k, w, shards, cap, 0)
    }

    /// The full builder: explicit repetitive cap and base offset.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ReferenceIndex::build`], or if
    /// `cap` is 0.
    pub fn build_full(
        genome: &Genome,
        k: usize,
        w: usize,
        shards: Shards,
        cap: usize,
        base_offset: RefPos,
    ) -> ShardedReferenceIndex {
        assert!(cap > 0, "occurrence cap must be positive");
        let n = shards.resolve(genome.len());
        let local_spans = shard_spans(genome.len(), n);
        let shards: Vec<ReferenceIndex> = if n == 1 {
            // Single shard: sketch the genome directly, no halo subsequence.
            vec![ReferenceIndex::build_at(genome, k, w, base_offset).with_max_occurrences(cap)]
        } else {
            local_spans
                .iter()
                .map(|span| {
                    ReferenceIndex::build_span_at(genome, k, w, span.clone(), base_offset)
                        .with_max_occurrences(cap)
                })
                .collect()
        };
        let spans = local_spans
            .into_iter()
            .map(|s| base_offset + s.start as RefPos..base_offset + s.end as RefPos)
            .collect();
        let mut index = ShardedReferenceIndex {
            k,
            w,
            genome_len: genome.len(),
            base_offset,
            max_occurrences: cap,
            spans,
            shards,
            masked: HashSet::new(),
            distinct: 0,
            masked_entries: 0,
        };
        index.recompute_mask();
        index
    }

    /// Adjusts the repetitive-minimizer cap, recomputing the global mask.
    /// Prefer [`ShardedReferenceIndex::build_with_max_occurrences`] when the
    /// cap is known at build time — this builder exists for API parity with
    /// [`ReferenceIndex::with_max_occurrences`].
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn with_max_occurrences(mut self, cap: usize) -> ShardedReferenceIndex {
        assert!(cap > 0, "occurrence cap must be positive");
        self.max_occurrences = cap;
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|s| s.with_max_occurrences(cap))
            .collect();
        self.recompute_mask();
        self
    }

    /// Recomputes the globally-masked hash set from the per-shard tables:
    /// a hash is masked iff its occurrences **summed across shards** exceed
    /// the cap — identical semantics to a monolithic index's per-key cap.
    ///
    /// With a single shard the per-shard table *is* the global view, so the
    /// mask derives directly from it without the cross-shard counting map —
    /// the default `Shards::Single` configuration never pays for sharding.
    fn recompute_mask(&mut self) {
        if let [shard] = self.shards.as_slice() {
            self.distinct = shard.distinct_minimizers();
            let mut masked_entries = 0usize;
            self.masked = shard
                .iter()
                .filter(|(_, hits)| hits.len() > self.max_occurrences)
                .map(|(hash, hits)| {
                    masked_entries += hits.len();
                    *hash
                })
                .collect();
            self.masked_entries = masked_entries;
            return;
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for shard in &self.shards {
            for (hash, hits) in shard.iter() {
                *counts.entry(*hash).or_default() += hits.len();
            }
        }
        self.distinct = counts.len();
        self.masked_entries = 0;
        self.masked = counts
            .into_iter()
            .filter(|&(_, count)| count > self.max_occurrences)
            .map(|(hash, count)| {
                self.masked_entries += count;
                hash
            })
            .collect();
    }

    /// Minimizer k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimizer window size.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Length of the indexed genome.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// First coordinate of the index's position space (0 unless built with
    /// [`ShardedReferenceIndex::build_at`]).
    pub fn base_offset(&self) -> RefPos {
        self.base_offset
    }

    /// One past the last coordinate of the index's position space:
    /// `base_offset + genome_len`.
    pub fn coord_end(&self) -> RefPos {
        self.base_offset + self.genome_len as RefPos
    }

    /// The repetitive-minimizer cap, applied to global occurrence counts.
    pub fn max_occurrences(&self) -> usize {
        self.max_occurrences
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The owned (halo-free) coordinate range of each shard, in order
    /// (offset-applied [`RefPos`] bounds).
    pub fn spans(&self) -> &[Range<RefPos>] {
        &self.spans
    }

    /// One shard's index. Positions are global; the shard's own lookup
    /// applies the same cap to its (smaller) per-shard counts, so use
    /// [`ShardedReferenceIndex::lookup`] for query semantics and
    /// [`ShardedReferenceIndex::shard_iter_unmasked`] for loading hardware
    /// images.
    pub fn shard(&self, s: usize) -> &ReferenceIndex {
        &self.shards[s]
    }

    /// Distinct minimizer hashes across the whole reference (union over
    /// shards — a hash occurring in several shards counts once).
    pub fn distinct_minimizers(&self) -> usize {
        self.distinct
    }

    /// Total (key, location) entries across all shards.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(ReferenceIndex::total_entries).sum()
    }

    /// Entries belonging to globally-masked hashes — what a query can never
    /// see, and what a CAM loader must not program.
    pub fn masked_entries(&self) -> usize {
        self.masked_entries
    }

    /// Number of globally-masked hashes.
    pub fn masked_keys(&self) -> usize {
        self.masked.len()
    }

    /// Entries of the largest shard — the per-shard memory bound that
    /// sharding exists to control (≈ `2/(w+1) ×` the shard's span length).
    pub fn max_shard_entries(&self) -> usize {
        self.shards
            .iter()
            .map(ReferenceIndex::total_entries)
            .max()
            .unwrap_or(0)
    }

    /// `true` if `hash` is masked by the global repetitive cap.
    pub fn is_masked(&self, hash: u64) -> bool {
        self.masked.contains(&hash)
    }

    /// Looks up a query minimizer, fanning out to every shard and chaining
    /// the per-shard hit lists in shard (= ascending position) order. Yields
    /// nothing if the key is absent **or** globally more frequent than the
    /// repetitive cap — exactly [`ReferenceIndex::lookup`]'s contract on a
    /// monolithic table.
    pub fn lookup<'a>(&'a self, m: &Minimizer) -> impl Iterator<Item = &'a RefHit> + 'a {
        self.lookup_hash(m.hash)
    }

    /// [`ShardedReferenceIndex::lookup`] by raw hash.
    pub fn lookup_hash(&self, hash: u64) -> impl Iterator<Item = &RefHit> + '_ {
        // With one shard the per-shard cap equals the global cap, so its own
        // lookup already masks correctly — skip the global-mask probe and
        // keep the default configuration's hot path at one hash lookup per
        // minimizer, same as a monolithic index.
        let masked = self.shards.len() > 1 && self.masked.contains(&hash);
        self.shards
            .iter()
            .filter(move |_| !masked)
            .flat_map(move |shard| shard.lookup_hash(hash).iter())
    }

    /// Iterates one shard's `(hash, hits)` pairs filtered by the **global**
    /// mask — the exact rows a per-shard CAM/RAM image must hold so the
    /// hardware model programs nothing the functional model refuses to
    /// query. (The shard's own [`ReferenceIndex::iter_unmasked`] would
    /// filter by per-shard counts, which under-masks split keys.)
    pub fn shard_iter_unmasked(&self, s: usize) -> impl Iterator<Item = (&u64, &Vec<RefHit>)> {
        self.shards[s]
            .iter()
            .filter(move |(hash, _)| !self.masked.contains(hash))
    }
}

/// Splits `0..genome_len` into `n` near-equal contiguous spans (the first
/// `genome_len % n` spans are one base longer). Always returns `n` spans;
/// trailing spans may be empty when `n > genome_len`.
fn shard_spans(genome_len: usize, n: usize) -> Vec<Range<usize>> {
    let n = n.max(1);
    let base = genome_len / n;
    let extra = genome_len % n;
    let mut spans = Vec::with_capacity(n);
    let mut start = 0usize;
    for s in 0..n {
        let len = base + usize::from(s < extra);
        spans.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, genome_len);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer::minimizers;
    use genpip_genomics::{DnaSeq, GenomeBuilder};

    fn genome(n: usize, seed: u64) -> Genome {
        GenomeBuilder::new(n).seed(seed).build()
    }

    /// A genome whose repeated unit crosses the masking cap only when
    /// occurrences are summed across shards.
    fn repeat_genome(copies: usize) -> Genome {
        let unit = GenomeBuilder::new(400)
            .seed(90)
            .repeat_fraction(0.0)
            .build();
        let mut seq = DnaSeq::new();
        for _ in 0..copies {
            seq.extend_from_seq(unit.sequence());
        }
        Genome::from_seq("repeats", seq)
    }

    #[test]
    fn spans_partition_the_genome() {
        for (len, n) in [(10_000usize, 1usize), (10_000, 3), (10_001, 7), (5, 9)] {
            let spans = shard_spans(len, n);
            assert_eq!(spans.len(), n);
            assert_eq!(spans[0].start, 0);
            assert_eq!(spans[n - 1].end, len);
            for pair in spans.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn shards_resolve_and_parse() {
        assert_eq!(Shards::Single.resolve(1 << 30), 1);
        assert_eq!(Shards::Fixed(7).resolve(100), 7);
        assert_eq!(Shards::Fixed(0).resolve(100), 1, "clamped to one shard");
        assert_eq!(
            Shards::Fixed(1_000_000).resolve(100),
            Shards::MAX_SHARDS,
            "clamped to the modeled CAM subarray groups"
        );
        assert_eq!(Shards::Auto.resolve(0), 1);
        assert_eq!(Shards::Auto.resolve(Shards::AUTO_BASES_PER_SHARD), 1);
        assert_eq!(Shards::Auto.resolve(Shards::AUTO_BASES_PER_SHARD + 1), 2);
        assert_eq!(Shards::Auto.resolve(usize::MAX), Shards::MAX_SHARDS);
        assert_eq!(Shards::parse("single"), Some(Shards::Single));
        assert_eq!(Shards::parse(" AUTO "), Some(Shards::Auto));
        assert_eq!(Shards::parse("1"), Some(Shards::Single));
        assert_eq!(Shards::parse("4"), Some(Shards::Fixed(4)));
        assert_eq!(Shards::parse("0"), None);
        assert_eq!(Shards::parse("bogus"), None);
        assert_eq!(Shards::default(), Shards::Single);
    }

    #[test]
    fn every_shard_count_answers_lookups_identically() {
        let g = genome(20_000, 1);
        let (k, w) = (15, 10);
        let single = ShardedReferenceIndex::build(&g, k, w, Shards::Single);
        for shards in [Shards::Fixed(2), Shards::Fixed(3), Shards::Fixed(8)] {
            let sharded = ShardedReferenceIndex::build(&g, k, w, shards);
            assert_eq!(sharded.total_entries(), single.total_entries());
            assert_eq!(sharded.distinct_minimizers(), single.distinct_minimizers());
            for m in minimizers(g.sequence(), k, w) {
                let a: Vec<RefHit> = single.lookup(&m).copied().collect();
                let b: Vec<RefHit> = sharded.lookup(&m).copied().collect();
                assert_eq!(a, b, "{shards:?}: lookup diverged at pos {}", m.pos);
            }
        }
    }

    #[test]
    fn single_shard_matches_the_monolithic_index() {
        let g = genome(10_000, 2);
        let mono = ReferenceIndex::build(&g, 15, 10);
        let sharded = ShardedReferenceIndex::build(&g, 15, 10, Shards::Single);
        assert_eq!(sharded.shard_count(), 1);
        for m in minimizers(g.sequence(), 15, 10) {
            let a: Vec<RefHit> = mono.lookup(&m).to_vec();
            let b: Vec<RefHit> = sharded.lookup(&m).copied().collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn masking_uses_the_global_occurrence_count() {
        // 60 copies of a 400 bp unit, cap 40, 7 shards: every unit minimizer
        // occurs ~60× globally (> cap) but only ~9× per shard (≤ cap). A
        // per-shard mask would let them through; the global mask must not.
        let g = repeat_genome(60);
        let (k, w) = (15, 10);
        // One index built with the cap up front, one through the builder
        // chain — both paths must agree.
        let sharded =
            ShardedReferenceIndex::build_with_max_occurrences(&g, k, w, Shards::Fixed(7), 40);
        let single =
            ShardedReferenceIndex::build(&g, k, w, Shards::Single).with_max_occurrences(40);
        let mut edge_case_hit = false;
        for m in minimizers(g.sequence(), k, w) {
            let a: Vec<RefHit> = single.lookup(&m).copied().collect();
            let b: Vec<RefHit> = sharded.lookup(&m).copied().collect();
            assert_eq!(a, b, "masking diverged at pos {}", m.pos);
            // The dangerous configuration: globally masked, but some shard
            // holds a below-cap hit list it would happily return on its own.
            if sharded.is_masked(m.hash) {
                assert!(b.is_empty());
                edge_case_hit |= (0..sharded.shard_count())
                    .any(|s| !sharded.shard(s).lookup_hash(m.hash).is_empty());
            }
        }
        assert!(
            edge_case_hit,
            "test genome never exercised the split-repeat masking edge case"
        );
        assert_eq!(sharded.masked_entries(), single.masked_entries());
        assert_eq!(sharded.masked_keys(), single.masked_keys());
    }

    #[test]
    fn shard_iter_unmasked_applies_the_global_mask() {
        let g = repeat_genome(60);
        let sharded =
            ShardedReferenceIndex::build_with_max_occurrences(&g, 15, 10, Shards::Fixed(5), 40);
        let mut visited = 0usize;
        for s in 0..sharded.shard_count() {
            for (hash, hits) in sharded.shard_iter_unmasked(s) {
                assert!(!sharded.is_masked(*hash));
                visited += hits.len();
            }
        }
        assert_eq!(visited, sharded.total_entries() - sharded.masked_entries());
        assert!(sharded.masked_entries() > 0);
    }

    #[test]
    fn more_shards_than_bases_is_harmless() {
        let g = genome(20_000, 3);
        let sharded = ShardedReferenceIndex::build(&g, 15, 10, Shards::Fixed(64));
        let single = ShardedReferenceIndex::build(&g, 15, 10, Shards::Single);
        assert_eq!(sharded.shard_count(), 64);
        assert_eq!(sharded.total_entries(), single.total_entries());
        assert!(sharded.max_shard_entries() < single.max_shard_entries());
    }

    #[test]
    fn max_shard_entries_shrinks_with_shard_count() {
        let g = genome(40_000, 4);
        let s1 = ShardedReferenceIndex::build(&g, 15, 10, Shards::Single);
        let s4 = ShardedReferenceIndex::build(&g, 15, 10, Shards::Fixed(4));
        assert_eq!(s1.max_shard_entries(), s1.total_entries());
        // Near-equal spans ⇒ the largest shard holds roughly a quarter.
        assert!(s4.max_shard_entries() < s1.total_entries() / 3);
    }
}
