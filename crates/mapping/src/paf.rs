//! PAF (Pairwise mApping Format) output.
//!
//! PAF is the 12-column tab-separated format minimap2 emits; producing it
//! makes this mapper's results consumable by the standard long-read
//! toolchain (`paftools`, IGV, dotplot viewers). Columns:
//!
//! ```text
//! qname qlen qstart qend strand tname tlen tstart tend nmatch alnlen mapq
//! ```
//!
//! plus the customary `cg:Z:` CIGAR tag.

use crate::align::{cigar_string, CigarOp};
use crate::mapper::Mapping;
use crate::refset::ReferenceSet;
use crate::seed::Strand;
use std::io::{self, Write};

/// One PAF record.
#[derive(Debug, Clone, PartialEq)]
pub struct PafRecord {
    /// Query (read) name.
    pub qname: String,
    /// Query length.
    pub qlen: usize,
    /// Query start (0-based, closed).
    pub qstart: usize,
    /// Query end (0-based, open).
    pub qend: usize,
    /// Mapping strand.
    pub strand: Strand,
    /// Target (reference) name.
    pub tname: String,
    /// Target length.
    pub tlen: usize,
    /// Target start.
    pub tstart: usize,
    /// Target end.
    pub tend: usize,
    /// Number of matching bases.
    pub nmatch: usize,
    /// Alignment block length (all columns).
    pub alnlen: usize,
    /// Mapping quality (0–255; 255 = unavailable).
    pub mapq: u8,
    /// CIGAR string for the `cg:Z:` tag.
    pub cigar: String,
}

impl PafRecord {
    /// Builds a record from a [`Mapping`].
    pub fn from_mapping(
        qname: impl Into<String>,
        qlen: usize,
        tname: impl Into<String>,
        tlen: usize,
        mapping: &Mapping,
    ) -> PafRecord {
        let (nmatch, alnlen, qconsumed) = summarize(&mapping.cigar, mapping.identity);
        PafRecord {
            qname: qname.into(),
            qlen,
            qstart: 0,
            qend: qconsumed.min(qlen),
            strand: mapping.strand,
            tname: tname.into(),
            tlen,
            tstart: mapping.ref_start,
            tend: mapping.ref_end,
            nmatch,
            alnlen,
            mapq: mapping.mapq,
            cigar: cigar_string(&mapping.cigar),
        }
    }

    /// Builds a record from a mapping produced against a [`ReferenceSet`],
    /// resolving the target name and length from the mapping's reference
    /// attribution. An unattributed mapping (`ref_name` is `None` — the
    /// single-reference case) resolves to the set's primary reference.
    ///
    /// # Panics
    ///
    /// Panics if the mapping names a reference the set does not contain.
    pub fn from_set_mapping(
        qname: impl Into<String>,
        qlen: usize,
        set: &ReferenceSet,
        mapping: &Mapping,
    ) -> PafRecord {
        let mapper = match mapping.ref_name.as_deref() {
            Some(name) => set
                .get(name)
                .unwrap_or_else(|| panic!("mapping names unknown reference {name:?}")),
            None => set.primary(),
        };
        PafRecord::from_mapping(
            qname,
            qlen,
            mapper.genome().name(),
            mapper.genome().len(),
            mapping,
        )
    }

    /// Renders the record as one PAF line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\tcg:Z:{}",
            self.qname,
            self.qlen,
            self.qstart,
            self.qend,
            self.strand,
            self.tname,
            self.tlen,
            self.tstart,
            self.tend,
            self.nmatch,
            self.alnlen,
            self.mapq,
            self.cigar
        )
    }
}

fn summarize(cigar: &[CigarOp], identity: f64) -> (usize, usize, usize) {
    let mut columns = 0usize;
    let mut qconsumed = 0usize;
    for op in cigar {
        match op {
            CigarOp::Match(l) => {
                columns += *l as usize;
                qconsumed += *l as usize;
            }
            CigarOp::Ins(l) => {
                columns += *l as usize;
                qconsumed += *l as usize;
            }
            CigarOp::Del(l) => columns += *l as usize,
        }
    }
    let nmatch = (identity * columns as f64).round() as usize;
    (nmatch, columns, qconsumed)
}

/// Writes PAF records to a writer, one line each.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_paf<W: Write>(mut w: W, records: &[PafRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "{}", r.to_line())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{Mapper, MapperParams};
    use genpip_genomics::GenomeBuilder;

    fn example_record() -> (PafRecord, usize) {
        let genome = GenomeBuilder::new(30_000).seed(1).name("ref1").build();
        let mapper = Mapper::build(&genome, MapperParams::default());
        let q = genome.sequence().subseq(10_000, 700);
        let mapping = mapper.map(&q).mapping.expect("exact read maps");
        (
            PafRecord::from_mapping("read7", q.len(), "ref1", genome.len(), &mapping),
            q.len(),
        )
    }

    #[test]
    fn record_fields_are_consistent() {
        let (r, qlen) = example_record();
        assert_eq!(r.qlen, qlen);
        assert!(r.qend <= r.qlen);
        assert!(r.tstart < r.tend);
        assert!(r.tend <= r.tlen);
        assert!(r.nmatch <= r.alnlen);
        assert!(r.alnlen >= r.qend - r.qstart);
    }

    #[test]
    fn line_has_twelve_columns_plus_cigar_tag() {
        let (r, _) = example_record();
        let line = r.to_line();
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 13);
        assert_eq!(fields[0], "read7");
        assert_eq!(fields[4], "+");
        assert_eq!(fields[5], "ref1");
        assert!(fields[12].starts_with("cg:Z:"));
        assert!(fields[12].contains('M'));
    }

    #[test]
    fn write_paf_emits_one_line_per_record() {
        let (r, _) = example_record();
        let mut buf = Vec::new();
        write_paf(&mut buf, &[r.clone(), r]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn set_mapping_resolves_target_from_attribution() {
        use crate::refset::ReferenceSet;
        let a = GenomeBuilder::new(25_000).seed(3).name("panel_a").build();
        let b = GenomeBuilder::new(30_000).seed(4).name("panel_b").build();
        let q = b.sequence().subseq(9_000, 700);
        let set = ReferenceSet::build(&[a, b.clone()], MapperParams::default());
        let best = set.map(&q).best.expect("read from panel_b maps");
        let r = PafRecord::from_set_mapping("read1", q.len(), &set, &best);
        assert_eq!(r.tname, "panel_b");
        assert_eq!(r.tlen, b.len());
        assert!(r.tend <= r.tlen);

        // Unattributed mappings (single-reference path) fall back to the
        // primary reference.
        let solo = ReferenceSet::build(std::slice::from_ref(&b), MapperParams::default());
        let best = solo.map(&q).best.expect("read maps on its own genome");
        assert!(best.ref_name.is_none());
        let r = PafRecord::from_set_mapping("read1", q.len(), &solo, &best);
        assert_eq!(r.tname, "panel_b");
    }

    #[test]
    fn reverse_strand_renders_minus() {
        let genome = GenomeBuilder::new(30_000).seed(2).name("ref2").build();
        let mapper = Mapper::build(&genome, MapperParams::default());
        let q = genome.sequence().subseq(5_000, 700).reverse_complement();
        let mapping = mapper.map(&q).mapping.expect("rc read maps");
        let r = PafRecord::from_mapping("rc", q.len(), "ref2", genome.len(), &mapping);
        assert!(r.to_line().contains("\t-\t"));
    }
}
