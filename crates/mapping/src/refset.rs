//! Multi-reference (pan-genome) mapping.
//!
//! A [`ReferenceSet`] holds several named references — each with its own
//! sharded minimizer index, its own coordinate space, and (on the hardware
//! side) its own CAM subarray group — and fans one read across all of them.
//! The query is sketched **once** (minimizers depend only on the sequence
//! and the shared `(k, w)`), seeded against every reference's index, chained
//! and finalized per reference, and the per-reference candidates are merged
//! into one best hit by a deterministic rule:
//!
//! 1. a mapped candidate beats an unmapped reference;
//! 2. among mapped candidates, higher chain score wins;
//! 3. ties break by reference name (ascending), then reference start
//!    position (ascending).
//!
//! The merge is a pure function of the per-reference results, so the winner
//! is identical for every shard count, parallelism level, and evaluation
//! order. With a single reference the set computes exactly what [`Mapper`]
//! computes — same counters, same mapping, `ref_name` left `None` — so
//! single-reference output stays byte-for-byte what it always was; only
//! multi-reference winners carry a `Some(name)` attribution.

use crate::chain::IncrementalChainer;
use crate::mapper::{Mapper, MapperParams, Mapping, MappingCounters, SeedScratch};
use crate::minimizer::minimizers_into;
use crate::seed::{seed_batch_into, SeedBatch};
use crate::RefPos;
use genpip_genomics::{DnaSeq, Genome};
use std::sync::Arc;

/// One reference's contribution to a [`SetMappingResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceMapping {
    /// The reference's name.
    pub reference: Arc<str>,
    /// This reference's mapping for the read, if it mapped here. Identical
    /// to what a standalone [`Mapper`] over the same reference would report
    /// (`ref_name` is `None`; attribution happens only on the merged
    /// winner).
    pub mapping: Option<Mapping>,
    /// Best chain score observed on this reference (even when unmapped).
    pub best_chain_score: f64,
    /// Alignment DP cells spent finalizing against this reference.
    pub align_cells: usize,
}

/// Outcome of mapping one read against a [`ReferenceSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct SetMappingResult {
    /// Per-reference candidates, in the set's reference order.
    pub per_reference: Vec<ReferenceMapping>,
    /// The merged best hit across all references (see module docs for the
    /// merge rule). In a multi-reference set its `ref_name` names the
    /// winning reference; in a single-reference set it is the plain
    /// [`Mapper`] mapping, unattributed.
    pub best: Option<Mapping>,
    /// Best chain score across all references.
    pub best_chain_score: f64,
    /// Workload counters summed across references (minimizers counted
    /// once — the sketch is shared).
    pub counters: MappingCounters,
}

/// A set of named references mapped as one pan-genome.
///
/// All references share one [`MapperParams`]; each gets its own [`Mapper`]
/// (genome + sharded index). Cloning the set shares the underlying genomes
/// and indexes ([`Mapper`] is cheaply clonable).
#[derive(Debug, Clone)]
pub struct ReferenceSet {
    mappers: Vec<Mapper>,
    names: Vec<Arc<str>>,
}

impl ReferenceSet {
    /// Builds a set over the given references, copying each genome once into
    /// shared storage.
    ///
    /// # Panics
    ///
    /// Panics if `genomes` is empty, or if any reference name is empty or
    /// duplicated — the merge tie-break and per-reference attribution need
    /// unique names.
    pub fn build(genomes: &[Genome], params: MapperParams) -> ReferenceSet {
        ReferenceSet::build_shared(
            genomes.iter().map(|g| Arc::new(g.clone())).collect(),
            params,
        )
    }

    /// Builds a set over already-shared genomes, without copying reference
    /// data. Same validation as [`ReferenceSet::build`].
    pub fn build_shared(genomes: Vec<Arc<Genome>>, params: MapperParams) -> ReferenceSet {
        assert!(!genomes.is_empty(), "a ReferenceSet needs >= 1 reference");
        let names: Vec<Arc<str>> = genomes.iter().map(|g| Arc::from(g.name())).collect();
        for (i, name) in names.iter().enumerate() {
            assert!(!name.is_empty(), "reference {i} has an empty name");
            assert!(
                !names[..i].contains(name),
                "duplicate reference name {name:?}: every reference in a set \
                 needs a unique name"
            );
        }
        let mappers = genomes
            .into_iter()
            .map(|g| Mapper::build_shared(g, params))
            .collect();
        ReferenceSet { mappers, names }
    }

    /// Number of references in the set.
    pub fn len(&self) -> usize {
        self.mappers.len()
    }

    /// Whether the set is empty (never true for a built set).
    pub fn is_empty(&self) -> bool {
        self.mappers.is_empty()
    }

    /// The reference names, in set order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// The per-reference mappers, in set order.
    pub fn mappers(&self) -> &[Mapper] {
        &self.mappers
    }

    /// The first reference's mapper — the "primary" a single-reference
    /// pipeline would have used.
    pub fn primary(&self) -> &Mapper {
        &self.mappers[0]
    }

    /// Looks up a reference's mapper by name.
    pub fn get(&self, name: &str) -> Option<&Mapper> {
        self.names
            .iter()
            .position(|n| n.as_ref() == name)
            .map(|i| &self.mappers[i])
    }

    /// The shared mapper configuration.
    pub fn params(&self) -> &MapperParams {
        self.primary().params()
    }

    /// Fresh (forward, reverse) chainer pairs, one per reference, for
    /// incremental chunk-based mapping.
    pub fn new_chainer_pairs(&self) -> Vec<(IncrementalChainer, IncrementalChainer)> {
        self.mappers.iter().map(|m| m.new_chainers()).collect()
    }

    /// Sketches `seq` once and seeds the minimizers against **every**
    /// reference's index, writing reference `i`'s anchors into `batches[i]`
    /// (the vector is resized to the set's length; batches keep their
    /// capacity across calls). Returns the number of minimizers extracted.
    pub fn sketch_and_seed_into(
        &self,
        seq: &DnaSeq,
        qpos_offset: RefPos,
        scratch: &mut SeedScratch,
        batches: &mut Vec<SeedBatch>,
    ) -> usize {
        let params = self.params();
        minimizers_into(
            seq,
            params.k,
            params.w,
            &mut scratch.sketch,
            &mut scratch.mins,
        );
        batches.resize_with(self.len(), SeedBatch::default);
        for (mapper, batch) in self.mappers.iter().zip(batches.iter_mut()) {
            seed_batch_into(mapper.index(), &scratch.mins, qpos_offset, batch);
        }
        scratch.mins.len()
    }

    /// Finalizes every reference's chainer pair against the query and merges
    /// the candidates. Returns the per-reference results (set order), the
    /// merged best hit, the best chain score across references, and the
    /// total alignment DP cells spent.
    pub fn finalize_mapping(
        &self,
        query: &DnaSeq,
        pairs: &[(IncrementalChainer, IncrementalChainer)],
    ) -> (Vec<ReferenceMapping>, Option<Mapping>, f64, usize) {
        assert_eq!(
            pairs.len(),
            self.len(),
            "one chainer pair per reference expected"
        );
        let mut per_reference = Vec::with_capacity(self.len());
        let mut best_chain_score = 0.0f64;
        let mut total_cells = 0usize;
        for ((mapper, name), (fwd, rev)) in self.mappers.iter().zip(&self.names).zip(pairs) {
            let (mapping, score, cells) = mapper.finalize_mapping(query, fwd, rev);
            best_chain_score = best_chain_score.max(score);
            total_cells += cells;
            per_reference.push(ReferenceMapping {
                reference: Arc::clone(name),
                mapping,
                best_chain_score: score,
                align_cells: cells,
            });
        }
        let best = self.merge(&per_reference);
        (per_reference, best, best_chain_score, total_cells)
    }

    /// The deterministic best-hit merge (see module docs). Attributes the
    /// winner with its reference name only when the set holds more than one
    /// reference, so single-reference output is untouched.
    fn merge(&self, per_reference: &[ReferenceMapping]) -> Option<Mapping> {
        let mut winner: Option<&ReferenceMapping> = None;
        for candidate in per_reference {
            let Some(m) = &candidate.mapping else {
                continue;
            };
            let beats = match winner.and_then(|w| w.mapping.as_ref().map(|wm| (w, wm))) {
                None => true,
                Some((w, wm)) => {
                    if m.chain_score != wm.chain_score {
                        m.chain_score > wm.chain_score
                    } else if candidate.reference != w.reference {
                        candidate.reference < w.reference
                    } else {
                        m.ref_start < wm.ref_start
                    }
                }
            };
            if beats {
                winner = Some(candidate);
            }
        }
        winner.map(|w| {
            let mut m = w.mapping.clone().expect("winner is mapped");
            if self.len() > 1 {
                m.ref_name = Some(Arc::clone(&w.reference));
            }
            m
        })
    }

    /// Maps a whole read against every reference with a fresh workspace.
    ///
    /// Convenience wrapper over [`ReferenceSet::map_with`]; hot loops should
    /// own the scratch buffers and chainer pairs and pass them in.
    pub fn map(&self, query: &DnaSeq) -> SetMappingResult {
        let mut pairs = self.new_chainer_pairs();
        self.map_with(query, &mut SeedScratch::new(), &mut Vec::new(), &mut pairs)
    }

    /// Maps a whole read against every reference, reusing caller-owned
    /// buffers. With one reference this computes exactly what
    /// [`Mapper::map_with`] computes.
    pub fn map_with(
        &self,
        query: &DnaSeq,
        scratch: &mut SeedScratch,
        batches: &mut Vec<SeedBatch>,
        pairs: &mut [(IncrementalChainer, IncrementalChainer)],
    ) -> SetMappingResult {
        assert_eq!(
            pairs.len(),
            self.len(),
            "one chainer pair per reference expected"
        );
        let mut counters = MappingCounters {
            minimizers: self.sketch_and_seed_into(query, 0, scratch, batches),
            ..MappingCounters::default()
        };
        for (batch, (fwd, rev)) in batches.iter().zip(pairs.iter_mut()) {
            fwd.reset();
            rev.reset();
            counters.seed_queries += batch.queries;
            counters.anchors += batch.hits;
            fwd.extend(&batch.forward);
            rev.extend(&batch.reverse);
            counters.chain_evals += fwd.dp_evaluations() + rev.dp_evaluations();
        }
        let (per_reference, best, best_chain_score, align_cells) =
            self.finalize_mapping(query, pairs);
        counters.align_cells = align_cells;
        SetMappingResult {
            per_reference,
            best,
            best_chain_score,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::rng::seeded;
    use genpip_genomics::{ErrorModel, GenomeBuilder};

    fn named_genome(n: usize, seed: u64, name: &str) -> Genome {
        GenomeBuilder::new(n).seed(seed).name(name).build()
    }

    #[test]
    #[should_panic(expected = "duplicate reference name")]
    fn duplicate_names_are_rejected() {
        let a = named_genome(5_000, 1, "same");
        let b = named_genome(6_000, 2, "same");
        ReferenceSet::build(&[a, b], MapperParams::default());
    }

    #[test]
    #[should_panic(expected = ">= 1 reference")]
    fn empty_set_is_rejected() {
        ReferenceSet::build(&[], MapperParams::default());
    }

    #[test]
    fn single_reference_set_is_bit_identical_to_the_plain_mapper() {
        let g = named_genome(40_000, 3, "solo");
        let params = MapperParams::default();
        let solo = Mapper::build(&g, params);
        let set = ReferenceSet::build(std::slice::from_ref(&g), params);
        let mut rng = seeded(4);
        for start in [0usize, 9_000, 27_000] {
            let truth = g.sequence().subseq(start, 900);
            let (noisy, _) = ErrorModel::with_total_rate(0.1).apply(&truth, &mut rng);
            for q in [truth.clone(), truth.reverse_complement(), noisy] {
                let plain = solo.map(&q);
                let merged = set.map(&q);
                assert_eq!(merged.best, plain.mapping, "mapping diverged");
                assert_eq!(merged.best_chain_score, plain.best_chain_score);
                assert_eq!(merged.counters, plain.counters);
                assert!(merged.best.iter().all(|m| m.ref_name.is_none()));
            }
        }
    }

    #[test]
    fn per_reference_results_match_solo_mappers() {
        // The pan-genome fan-out must not change any single reference's
        // answer: reference i's candidate is bit-identical to a standalone
        // mapper over reference i alone.
        let refs = [
            named_genome(30_000, 5, "chr_a"),
            named_genome(25_000, 6, "chr_b"),
            named_genome(20_000, 7, "chr_c"),
        ];
        let params = MapperParams::default();
        let set = ReferenceSet::build(&refs, params);
        let q = refs[1].sequence().subseq(8_000, 1_000);
        let result = set.map(&q);
        assert_eq!(result.per_reference.len(), 3);
        for (i, g) in refs.iter().enumerate() {
            let solo = Mapper::build(g, params).map(&q);
            let per = &result.per_reference[i];
            assert_eq!(per.reference.as_ref(), g.name());
            assert_eq!(per.mapping, solo.mapping, "reference {i} diverged");
            assert_eq!(per.best_chain_score, solo.best_chain_score);
            assert_eq!(per.align_cells, solo.counters.align_cells);
        }
    }

    #[test]
    fn best_hit_is_attributed_to_the_owning_reference() {
        let home = named_genome(30_000, 8, "home");
        let other = named_genome(30_000, 9, "other");
        let set = ReferenceSet::build(&[other, home.clone()], MapperParams::default());
        let q = home.sequence().subseq(12_000, 900);
        let result = set.map(&q);
        let best = result.best.expect("read from 'home' must map");
        assert_eq!(best.ref_name.as_deref(), Some("home"));
        assert!(best.ref_start.abs_diff(12_000) < 50);
        // The alien reference contributed no competitive candidate.
        let alien = &result.per_reference[0];
        assert!(
            alien.mapping.is_none()
                || alien.mapping.as_ref().unwrap().chain_score < best.chain_score
        );
    }

    #[test]
    fn exact_ties_break_by_reference_name_ascending() {
        // Two references with identical sequence produce identical chain
        // scores and positions; the merge must pick the lexicographically
        // first name, regardless of set order.
        let seq_src = named_genome(20_000, 10, "src");
        let beta = Genome::from_seq("beta", seq_src.sequence().clone());
        let alpha = Genome::from_seq("alpha", seq_src.sequence().clone());
        let q = seq_src.sequence().subseq(6_000, 800);
        for order in [
            vec![beta.clone(), alpha.clone()],
            vec![alpha.clone(), beta.clone()],
        ] {
            let set = ReferenceSet::build(&order, MapperParams::default());
            let best = set.map(&q).best.expect("read must map");
            assert_eq!(best.ref_name.as_deref(), Some("alpha"));
        }
    }

    #[test]
    fn map_with_reuses_buffers_and_matches_map() {
        let refs = [
            named_genome(20_000, 11, "r1"),
            named_genome(20_000, 12, "r2"),
        ];
        let set = ReferenceSet::build(&refs, MapperParams::default());
        let mut scratch = SeedScratch::new();
        let mut batches = Vec::new();
        let mut pairs = set.new_chainer_pairs();
        for (i, g) in refs.iter().enumerate() {
            let q = g.sequence().subseq(3_000 + i * 1_000, 700);
            let reused = set.map_with(&q, &mut scratch, &mut batches, &mut pairs);
            assert_eq!(reused, set.map(&q), "query {i} diverged under reuse");
        }
    }

    #[test]
    fn counters_sum_across_references_with_one_shared_sketch() {
        let refs = [named_genome(20_000, 13, "a"), named_genome(20_000, 14, "b")];
        let params = MapperParams::default();
        let set = ReferenceSet::build(&refs, params);
        let q = refs[0].sequence().subseq(4_000, 800);
        let merged = set.map(&q);
        let solo_a = Mapper::build(&refs[0], params).map(&q);
        let solo_b = Mapper::build(&refs[1], params).map(&q);
        // Minimizers are sketched once, not per reference.
        assert_eq!(merged.counters.minimizers, solo_a.counters.minimizers);
        // Lookups and anchors fan out across both references.
        assert_eq!(
            merged.counters.seed_queries,
            solo_a.counters.seed_queries + solo_b.counters.seed_queries
        );
        assert_eq!(
            merged.counters.anchors,
            solo_a.counters.anchors + solo_b.counters.anchors
        );
        assert_eq!(
            merged.counters.align_cells,
            solo_a.counters.align_cells + solo_b.counters.align_cells
        );
    }
}
