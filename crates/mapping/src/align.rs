//! Banded affine-gap global alignment (Gotoh's algorithm).
//!
//! The paper's Figure 1 ⓓ: sequence alignment quantifies the similarity
//! between the read and the candidate reference region selected by chaining,
//! via a computationally expensive dynamic program. GenPIP executes this DP
//! on the same PIM units as chaining (PARC-style, Section 4.1); this module
//! is the functional implementation, and its cell count drives the hardware
//! cost model.
//!
//! Gap cost model: a gap of length `L` costs `gap_open + L · gap_extend`.

use genpip_genomics::{Base, DnaSeq};
use std::fmt;

/// Alignment scoring parameters (minimap2-like defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentParams {
    /// Score for a matching column (positive).
    pub match_score: i32,
    /// Score for a mismatching column (negative).
    pub mismatch: i32,
    /// One-off cost of opening a gap (negative).
    pub gap_open: i32,
    /// Per-base cost of a gap, charged for every gapped column including the
    /// first (negative).
    pub gap_extend: i32,
}

impl Default for AlignmentParams {
    fn default() -> AlignmentParams {
        AlignmentParams {
            match_score: 2,
            mismatch: -4,
            gap_open: -4,
            gap_extend: -2,
        }
    }
}

/// One CIGAR run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarOp {
    /// `len` aligned columns (match or mismatch).
    Match(u32),
    /// `len` query bases absent from the reference.
    Ins(u32),
    /// `len` reference bases absent from the query.
    Del(u32),
}

impl fmt::Display for CigarOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CigarOp::Match(n) => write!(f, "{n}M"),
            CigarOp::Ins(n) => write!(f, "{n}I"),
            CigarOp::Del(n) => write!(f, "{n}D"),
        }
    }
}

/// Renders a CIGAR vector as the conventional compact string.
pub fn cigar_string(cigar: &[CigarOp]) -> String {
    cigar.iter().map(CigarOp::to_string).collect()
}

/// A finished global alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Total alignment score.
    pub score: i32,
    /// CIGAR operations, query-leading.
    pub cigar: Vec<CigarOp>,
    /// Number of exactly matching columns.
    pub matches: usize,
    /// Total alignment columns (M + I + D).
    pub columns: usize,
    /// DP cells computed (the workload counter).
    pub cells: usize,
}

impl Alignment {
    /// BLAST-style identity: matching columns over all alignment columns.
    pub fn identity(&self) -> f64 {
        if self.columns == 0 {
            1.0
        } else {
            self.matches as f64 / self.columns as f64
        }
    }
}

/// Aligns `query` against `reference` globally within a diagonal band.
///
/// The band covers columns `j ∈ [i + band_center − hw, i + band_center + hw]`
/// for each query row `i`; `hw` is widened automatically so the band always
/// contains both the origin and the terminal cell, making the function total.
///
/// # Example
///
/// ```
/// use genpip_genomics::DnaSeq;
/// use genpip_mapping::align::{banded_global, AlignmentParams};
///
/// let q: DnaSeq = "ACGTACGTAC".parse()?;
/// let r: DnaSeq = "ACGTTCGTAC".parse()?;
/// let aln = banded_global(&q, &r, &AlignmentParams::default(), 0, 4);
/// assert_eq!(aln.matches, 9);
/// assert_eq!(aln.columns, 10);
/// # Ok::<(), genpip_genomics::base::ParseBaseError>(())
/// ```
pub fn banded_global(
    query: &DnaSeq,
    reference: &DnaSeq,
    params: &AlignmentParams,
    band_center: i64,
    band_halfwidth: usize,
) -> Alignment {
    let q: Vec<Base> = query.to_bases();
    let r: Vec<Base> = reference.to_bases();
    let (n, m) = (q.len(), r.len());

    // Widen the band to keep (0,0) and (n,m) inside it.
    let need_start = band_center.unsigned_abs() as usize;
    let need_end = (m as i64 - n as i64 - band_center).unsigned_abs() as usize;
    let hw = band_halfwidth.max(need_start).max(need_end) + 1;
    let width = 2 * hw + 1;

    const NEG: i32 = i32::MIN / 4;
    let lo_of = |i: usize| -> usize {
        let lo = i as i64 + band_center - hw as i64;
        lo.clamp(0, m as i64) as usize
    };
    let hi_of = |i: usize| -> usize {
        let hi = i as i64 + band_center + hw as i64;
        hi.clamp(0, m as i64) as usize
    };

    // Rolling rows indexed by (j - lo) would complicate window shifts; rows
    // are short (≤ width), so index them by absolute j with reallocation-free
    // window slices.
    let mut h_prev = vec![NEG; m + 1];
    let mut ix_prev = vec![NEG; m + 1];
    let mut iy_prev = vec![NEG; m + 1];
    let mut h_curr = vec![NEG; m + 1];
    let mut ix_curr = vec![NEG; m + 1];
    let mut iy_curr = vec![NEG; m + 1];

    // Traceback: per cell, bits 0..1 = H source (0 diag, 1 Ix, 2 Iy, 3 origin),
    // bit 2 = Ix extended, bit 3 = Iy extended.
    let mut tb = vec![0u8; (n + 1) * width];
    let tb_index = |i: usize, j: usize, lo: usize| i * width + (j - lo);

    let mut cells = 0usize;

    // Row 0: leading deletions.
    {
        let lo = lo_of(0);
        let hi = hi_of(0);
        h_prev[0] = 0;
        tb[tb_index(0, 0, lo)] = 3;
        for j in 1..=hi {
            iy_prev[j] = params.gap_open + params.gap_extend * j as i32;
            h_prev[j] = iy_prev[j];
            let mut flags = 2u8; // H from Iy
            if j > 1 {
                flags |= 0b1000; // Iy extended
            }
            tb[tb_index(0, j, lo)] = flags;
            cells += 1;
        }
    }

    for i in 1..=n {
        let lo = lo_of(i);
        let hi = hi_of(i);
        let prev_lo = lo_of(i - 1);
        let prev_hi = hi_of(i - 1);
        for j in lo..=hi {
            h_curr[j] = NEG;
            ix_curr[j] = NEG;
            iy_curr[j] = NEG;
        }
        for j in lo..=hi {
            cells += 1;
            let mut flags = 0u8;

            // Ix: consume a query base (gap in reference).
            let up_ok = (prev_lo..=prev_hi).contains(&j);
            let ix = if up_ok {
                let open = h_prev[j] + params.gap_open + params.gap_extend;
                let extend = ix_prev[j] + params.gap_extend;
                if extend > open {
                    flags |= 0b0100;
                    extend
                } else {
                    open
                }
            } else {
                NEG
            };
            ix_curr[j] = ix;

            // Iy: consume a reference base (gap in query).
            let iy = if j > lo {
                let open = h_curr[j - 1] + params.gap_open + params.gap_extend;
                let extend = iy_curr[j - 1] + params.gap_extend;
                if extend > open {
                    flags |= 0b1000;
                    extend
                } else {
                    open
                }
            } else {
                NEG
            };
            iy_curr[j] = iy;

            // H: diagonal, or close a gap.
            let diag_ok = j >= 1 && (prev_lo..=prev_hi).contains(&(j - 1));
            let diag = if diag_ok {
                let s = if q[i - 1] == r[j - 1] {
                    params.match_score
                } else {
                    params.mismatch
                };
                h_prev[j - 1] + s
            } else {
                NEG
            };
            let mut h = diag;
            let mut src = 0u8;
            if ix > h {
                h = ix;
                src = 1;
            }
            if iy > h {
                h = iy;
                src = 2;
            }
            h_curr[j] = h;
            tb[tb_index(i, j, lo)] = flags | src;
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
        std::mem::swap(&mut ix_prev, &mut ix_curr);
        std::mem::swap(&mut iy_prev, &mut iy_curr);
    }

    let score = h_prev[m];

    // Traceback.
    let mut ops_rev: Vec<(u8, u32)> = Vec::new(); // (kind: 0=M,1=I,2=D, len)
    let push = |kind: u8, ops_rev: &mut Vec<(u8, u32)>| {
        if let Some(last) = ops_rev.last_mut() {
            if last.0 == kind {
                last.1 += 1;
                return;
            }
        }
        ops_rev.push((kind, 1));
    };
    let mut matches = 0usize;
    let (mut i, mut j) = (n, m);
    // Which matrix we are currently in: 0=H, 1=Ix, 2=Iy.
    let mut state = 0u8;
    while i > 0 || j > 0 {
        let lo = lo_of(i);
        let flags = tb[tb_index(i, j, lo)];
        match state {
            0 => {
                let src = flags & 0b11;
                match src {
                    0 => {
                        // Diagonal step.
                        push(0, &mut ops_rev);
                        if query.get(i - 1) == reference.get(j - 1) {
                            matches += 1;
                        }
                        i -= 1;
                        j -= 1;
                    }
                    1 => state = 1,
                    2 => state = 2,
                    _ => break, // origin
                }
            }
            1 => {
                push(1, &mut ops_rev);
                let extended = flags & 0b0100 != 0;
                i -= 1;
                state = if extended { 1 } else { 0 };
            }
            _ => {
                push(2, &mut ops_rev);
                let extended = flags & 0b1000 != 0;
                j -= 1;
                state = if extended { 2 } else { 0 };
            }
        }
    }
    ops_rev.reverse();
    let mut columns = 0usize;
    let cigar: Vec<CigarOp> = ops_rev
        .into_iter()
        .map(|(kind, len)| {
            columns += len as usize;
            match kind {
                0 => CigarOp::Match(len),
                1 => CigarOp::Ins(len),
                _ => CigarOp::Del(len),
            }
        })
        .collect();

    Alignment {
        score,
        cigar,
        matches,
        columns,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::rng::seeded;
    use genpip_genomics::rng::Rng;
    use genpip_genomics::{ErrorModel, GenomeBuilder};

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    /// Full (unbanded) Gotoh reference implementation, score only.
    fn full_gotoh_score(q: &DnaSeq, r: &DnaSeq, p: &AlignmentParams) -> i32 {
        const NEG: i32 = i32::MIN / 4;
        let (n, m) = (q.len(), r.len());
        let mut h = vec![vec![NEG; m + 1]; n + 1];
        let mut ix = vec![vec![NEG; m + 1]; n + 1];
        let mut iy = vec![vec![NEG; m + 1]; n + 1];
        h[0][0] = 0;
        for j in 1..=m {
            iy[0][j] = p.gap_open + p.gap_extend * j as i32;
            h[0][j] = iy[0][j];
        }
        for i in 1..=n {
            ix[i][0] = p.gap_open + p.gap_extend * i as i32;
            h[i][0] = ix[i][0];
            for j in 1..=m {
                ix[i][j] =
                    (h[i - 1][j] + p.gap_open + p.gap_extend).max(ix[i - 1][j] + p.gap_extend);
                iy[i][j] =
                    (h[i][j - 1] + p.gap_open + p.gap_extend).max(iy[i][j - 1] + p.gap_extend);
                let s = if q.get(i - 1) == r.get(j - 1) {
                    p.match_score
                } else {
                    p.mismatch
                };
                h[i][j] = (h[i - 1][j - 1] + s).max(ix[i][j]).max(iy[i][j]);
            }
        }
        h[n][m]
    }

    fn cigar_consumes(aln: &Alignment) -> (usize, usize) {
        let mut qc = 0;
        let mut rc = 0;
        for op in &aln.cigar {
            match op {
                CigarOp::Match(l) => {
                    qc += *l as usize;
                    rc += *l as usize;
                }
                CigarOp::Ins(l) => qc += *l as usize,
                CigarOp::Del(l) => rc += *l as usize,
            }
        }
        (qc, rc)
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let p = AlignmentParams::default();
        let a = seq("ACGTACGTACGTACGT");
        let aln = banded_global(&a, &a, &p, 0, 8);
        assert_eq!(aln.score, 16 * p.match_score);
        assert_eq!(aln.matches, 16);
        assert_eq!(aln.identity(), 1.0);
        assert_eq!(cigar_string(&aln.cigar), "16M");
    }

    #[test]
    fn single_mismatch() {
        let p = AlignmentParams::default();
        let aln = banded_global(&seq("ACGTACGT"), &seq("ACGTTCGT"), &p, 0, 4);
        assert_eq!(aln.score, 7 * p.match_score + p.mismatch);
        assert_eq!(aln.matches, 7);
        assert_eq!(cigar_string(&aln.cigar), "8M");
    }

    #[test]
    fn single_insertion_and_deletion() {
        let p = AlignmentParams::default();
        let ins = banded_global(&seq("ACGTTACGT"), &seq("ACGTACGT"), &p, 0, 4);
        assert_eq!(ins.score, 8 * p.match_score + p.gap_open + p.gap_extend);
        let (qc, rc) = cigar_consumes(&ins);
        assert_eq!((qc, rc), (9, 8));

        let del = banded_global(&seq("ACGTACGT"), &seq("ACGTTACGT"), &p, 0, 4);
        assert_eq!(del.score, ins.score);
        let (qc, rc) = cigar_consumes(&del);
        assert_eq!((qc, rc), (8, 9));
    }

    #[test]
    fn affine_gaps_prefer_one_long_gap() {
        let p = AlignmentParams::default();
        // Removing 4 consecutive bases: expect a single 4-long deletion run.
        let r = seq("ACGGCAATCGGTTACG");
        let q = seq("ACGGCGGTTACG"); // drop "AATC" at position 5..9
        let aln = banded_global(&q, &r, &p, 0, 8);
        let dels: Vec<u32> = aln
            .cigar
            .iter()
            .filter_map(|op| match op {
                CigarOp::Del(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(dels, vec![4]);
        assert_eq!(
            aln.score,
            12 * p.match_score + p.gap_open + 4 * p.gap_extend
        );
    }

    #[test]
    fn empty_inputs() {
        let p = AlignmentParams::default();
        let e = DnaSeq::new();
        let a = seq("ACGT");
        let aln = banded_global(&e, &e, &p, 0, 2);
        assert_eq!(aln.score, 0);
        assert!(aln.cigar.is_empty());
        let aln = banded_global(&e, &a, &p, 0, 2);
        assert_eq!(aln.score, p.gap_open + 4 * p.gap_extend);
        assert_eq!(cigar_string(&aln.cigar), "4D");
        let aln = banded_global(&a, &e, &p, 0, 2);
        assert_eq!(cigar_string(&aln.cigar), "4I");
    }

    #[test]
    fn banded_matches_full_gotoh_on_random_pairs() {
        let p = AlignmentParams::default();
        let mut rng = seeded(7);
        for trial in 0..25 {
            let n = rng.random_range(5..120usize);
            let truth = GenomeBuilder::new(n)
                .seed(trial as u64)
                .build()
                .sequence()
                .clone();
            let (obs, _) = ErrorModel::with_total_rate(0.2).apply(&truth, &mut rng);
            let banded = banded_global(&obs, &truth, &p, 0, 48.max(n / 2));
            let full = full_gotoh_score(&obs, &truth, &p);
            assert_eq!(banded.score, full, "trial {trial}");
            // CIGAR must consume exactly both sequences.
            let (qc, rc) = cigar_consumes(&banded);
            assert_eq!((qc, rc), (obs.len(), truth.len()), "trial {trial}");
        }
    }

    #[test]
    fn cigar_score_is_consistent() {
        // Recomputing the score from the traceback path must reproduce the
        // DP score (catches traceback bugs).
        let p = AlignmentParams::default();
        let mut rng = seeded(9);
        let truth = GenomeBuilder::new(200).seed(5).build().sequence().clone();
        let (obs, _) = ErrorModel::with_total_rate(0.15).apply(&truth, &mut rng);
        let aln = banded_global(&obs, &truth, &p, 0, 64);
        let mut score = 0i32;
        let (mut qi, mut ri) = (0usize, 0usize);
        for op in &aln.cigar {
            match op {
                CigarOp::Match(l) => {
                    for _ in 0..*l {
                        score += if obs.get(qi) == truth.get(ri) {
                            p.match_score
                        } else {
                            p.mismatch
                        };
                        qi += 1;
                        ri += 1;
                    }
                }
                CigarOp::Ins(l) => {
                    score += p.gap_open + p.gap_extend * *l as i32;
                    qi += *l as usize;
                }
                CigarOp::Del(l) => {
                    score += p.gap_open + p.gap_extend * *l as i32;
                    ri += *l as usize;
                }
            }
        }
        assert_eq!(score, aln.score);
    }

    #[test]
    fn narrow_band_still_terminates_with_offset_center() {
        let p = AlignmentParams::default();
        let g = GenomeBuilder::new(400).seed(11).build().sequence().clone();
        let q = g.subseq(100, 200);
        // Center the band on the true diagonal offset (query starts at 100).
        let aln = banded_global(&q, &g, &p, 100, 16);
        assert!(aln.matches >= 190, "matches {}", aln.matches);
    }

    #[test]
    fn cells_respect_band() {
        let p = AlignmentParams::default();
        let a = GenomeBuilder::new(500).seed(12).build().sequence().clone();
        let narrow = banded_global(&a, &a, &p, 0, 8);
        let wide = banded_global(&a, &a, &p, 0, 128);
        assert!(narrow.cells < wide.cells);
        assert_eq!(narrow.score, wide.score);
    }
}
