//! The reference minimizer index.
//!
//! The paper's Figure 1 ⓐ: an offline pass extracts minimizers from the
//! reference genome and stores them in a key–value hash table (minimizer →
//! locations). GenPIP materializes this table inside ReRAM CAM (keys) and
//! RAM (values) arrays; this module is the functional reference whose
//! contents get "programmed" into the `genpip-pim` seeding-unit model.

use crate::minimizer::{minimizers, Minimizer};
use genpip_genomics::Genome;
use std::collections::HashMap;

/// One reference hit: where a minimizer occurs in the genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefHit {
    /// Position of the k-mer's first base in the reference.
    pub pos: u32,
    /// Strand flag of the canonical k-mer at that position.
    pub reverse: bool,
}

/// Hash table from minimizer hash to reference locations.
#[derive(Debug, Clone)]
pub struct ReferenceIndex {
    k: usize,
    w: usize,
    genome_len: usize,
    table: HashMap<u64, Vec<RefHit>>,
    max_occurrences: usize,
}

impl ReferenceIndex {
    /// Default cap on hits per minimizer: more frequent minimizers are
    /// treated as repetitive and skipped at query time (minimap2's
    /// `--mask-level` analogue).
    pub const DEFAULT_MAX_OCCURRENCES: usize = 128;

    /// Builds the index of `genome` with minimizer parameters `(k, w)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=32` or `w` is 0.
    pub fn build(genome: &Genome, k: usize, w: usize) -> ReferenceIndex {
        let mut table: HashMap<u64, Vec<RefHit>> = HashMap::new();
        for m in minimizers(genome.sequence(), k, w) {
            table.entry(m.hash).or_default().push(RefHit {
                pos: m.pos,
                reverse: m.reverse,
            });
        }
        ReferenceIndex {
            k,
            w,
            genome_len: genome.len(),
            table,
            max_occurrences: Self::DEFAULT_MAX_OCCURRENCES,
        }
    }

    /// Adjusts the repetitive-minimizer cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn with_max_occurrences(mut self, cap: usize) -> ReferenceIndex {
        assert!(cap > 0, "occurrence cap must be positive");
        self.max_occurrences = cap;
        self
    }

    /// Minimizer k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimizer window size.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Length of the indexed genome.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Number of distinct minimizer keys.
    pub fn distinct_minimizers(&self) -> usize {
        self.table.len()
    }

    /// Total number of (key, location) entries.
    pub fn total_entries(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// Looks up a query minimizer, returning its reference hits, or an empty
    /// slice if the key is absent **or** more frequent than the repetitive
    /// cap.
    pub fn lookup(&self, m: &Minimizer) -> &[RefHit] {
        match self.table.get(&m.hash) {
            Some(hits) if hits.len() <= self.max_occurrences => hits,
            _ => &[],
        }
    }

    /// Looks up by raw hash (used by the PIM CAM model, which stores hashes
    /// directly).
    pub fn lookup_hash(&self, hash: u64) -> &[RefHit] {
        match self.table.get(&hash) {
            Some(hits) if hits.len() <= self.max_occurrences => hits,
            _ => &[],
        }
    }

    /// Iterates over all `(hash, hits)` pairs (for loading the PIM arrays).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Vec<RefHit>)> {
        self.table.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::GenomeBuilder;

    fn genome(n: usize, seed: u64) -> Genome {
        GenomeBuilder::new(n).seed(seed).build()
    }

    #[test]
    fn index_contains_every_reference_minimizer() {
        let g = genome(10_000, 1);
        let idx = ReferenceIndex::build(&g, 15, 10);
        for m in minimizers(g.sequence(), 15, 10) {
            let hits = idx.lookup(&m);
            assert!(
                hits.iter().any(|h| h.pos == m.pos),
                "minimizer at {} missing from index",
                m.pos
            );
        }
    }

    #[test]
    fn entry_count_matches_sketch_size() {
        let g = genome(10_000, 2);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let sketch = minimizers(g.sequence(), 15, 10);
        assert_eq!(idx.total_entries(), sketch.len());
        assert!(idx.distinct_minimizers() <= sketch.len());
        assert_eq!(idx.genome_len(), 10_000);
        assert_eq!((idx.k(), idx.w()), (15, 10));
    }

    #[test]
    fn absent_key_returns_empty() {
        let g = genome(1_000, 3);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let phantom = Minimizer {
            hash: 0xDEAD_BEEF_DEAD_BEEF,
            pos: 0,
            reverse: false,
        };
        assert!(idx.lookup(&phantom).is_empty());
        assert!(idx.lookup_hash(0xDEAD_BEEF_DEAD_BEEF).is_empty());
    }

    #[test]
    fn repetitive_minimizers_are_masked() {
        // A genome that is one repeated unit makes every minimizer highly
        // repetitive; with a low cap all lookups come back empty.
        let unit = genome(400, 4);
        let mut seq = genpip_genomics::DnaSeq::new();
        for _ in 0..50 {
            seq.extend_from_seq(unit.sequence());
        }
        let g = Genome::from_seq("repeats", seq);
        let idx = ReferenceIndex::build(&g, 15, 10).with_max_occurrences(4);
        let masked = minimizers(g.sequence(), 15, 10)
            .iter()
            .filter(|m| idx.lookup(m).is_empty())
            .count();
        let total = minimizers(g.sequence(), 15, 10).len();
        assert!(
            masked as f64 / total as f64 > 0.9,
            "only {masked}/{total} masked"
        );
    }

    #[test]
    fn iter_visits_all_entries() {
        let g = genome(5_000, 5);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let visited: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(visited, idx.total_entries());
    }
}
