//! The reference minimizer index.
//!
//! The paper's Figure 1 ⓐ: an offline pass extracts minimizers from the
//! reference genome and stores them in a key–value hash table (minimizer →
//! locations). GenPIP materializes this table inside ReRAM CAM (keys) and
//! RAM (values) arrays; this module is the functional reference whose
//! contents get "programmed" into the `genpip-pim` seeding-unit model.

use crate::minimizer::{minimizers, Minimizer};
use crate::RefPos;
use genpip_genomics::Genome;
use std::collections::HashMap;
use std::ops::Range;

/// One reference hit: where a minimizer occurs in the genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefHit {
    /// Position of the k-mer's first base in the reference coordinate space:
    /// the index's [`ReferenceIndex::base_offset`] plus the position within
    /// the indexed sequence. [`RefPos`] is 64-bit, so references are no
    /// longer capped at the 4 Gbp `u32` horizon.
    pub pos: RefPos,
    /// Strand flag of the canonical k-mer at that position.
    pub reverse: bool,
}

/// Hash table from minimizer hash to reference locations.
#[derive(Debug, Clone)]
pub struct ReferenceIndex {
    k: usize,
    w: usize,
    genome_len: usize,
    base_offset: RefPos,
    table: HashMap<u64, Vec<RefHit>>,
    max_occurrences: usize,
}

impl ReferenceIndex {
    /// Default cap on hits per minimizer: more frequent minimizers are
    /// treated as repetitive and skipped at query time (minimap2's
    /// `--mask-level` analogue).
    pub const DEFAULT_MAX_OCCURRENCES: usize = 128;

    /// Builds the index of `genome` with minimizer parameters `(k, w)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=32` or `w` is 0.
    pub fn build(genome: &Genome, k: usize, w: usize) -> ReferenceIndex {
        Self::build_at(genome, k, w, 0)
    }

    /// Builds the index of `genome` with its coordinate space starting at
    /// `base_offset` instead of 0: every stored hit position is
    /// `base_offset + position-in-genome`. This is how a sharded build places
    /// each slice of a long reference into one global `u64` coordinate space
    /// without ever materializing the whole sequence.
    pub fn build_at(genome: &Genome, k: usize, w: usize, base_offset: RefPos) -> ReferenceIndex {
        let mut table: HashMap<u64, Vec<RefHit>> = HashMap::new();
        for m in minimizers(genome.sequence(), k, w) {
            table.entry(m.hash).or_default().push(RefHit {
                pos: base_offset + m.pos,
                reverse: m.reverse,
            });
        }
        ReferenceIndex {
            k,
            w,
            genome_len: genome.len(),
            base_offset,
            table,
            max_occurrences: Self::DEFAULT_MAX_OCCURRENCES,
        }
    }

    /// Builds the index over only the minimizers **owned** by `span`
    /// (a position range of the genome) — one shard of a
    /// [`crate::ShardedReferenceIndex`].
    ///
    /// The sketched subsequence extends `w + k - 1` bases beyond each end of
    /// `span` (clamped to the genome), so every winnowing window that could
    /// witness an owned position exists in the shard exactly as it does in a
    /// whole-genome sketch; hits are then filtered to `span`. The union of
    /// the indexes built from a partition of `0..genome.len()` therefore
    /// holds precisely the whole-genome minimizer set, each hit exactly
    /// once.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ReferenceIndex::build`], or if
    /// `span` exceeds the genome.
    pub fn build_span(genome: &Genome, k: usize, w: usize, span: Range<usize>) -> ReferenceIndex {
        Self::build_span_at(genome, k, w, span, 0)
    }

    /// [`ReferenceIndex::build_span`] with the genome's coordinate space
    /// starting at `base_offset`: `span` stays a range of positions within
    /// the genome, while stored hits carry `base_offset + position`.
    pub fn build_span_at(
        genome: &Genome,
        k: usize,
        w: usize,
        span: Range<usize>,
        base_offset: RefPos,
    ) -> ReferenceIndex {
        assert!(
            span.start <= span.end && span.end <= genome.len(),
            "shard span {span:?} exceeds genome of {} bases",
            genome.len()
        );
        let halo = w + k - 1;
        let ext_start = span.start.saturating_sub(halo);
        let ext_end = (span.end + halo).min(genome.len());
        let sub = genome.sequence().subseq(ext_start, ext_end - ext_start);
        let mut table: HashMap<u64, Vec<RefHit>> = HashMap::new();
        for m in minimizers(&sub, k, w) {
            let pos = ext_start + m.pos as usize;
            if span.contains(&pos) {
                table.entry(m.hash).or_default().push(RefHit {
                    pos: base_offset + pos as RefPos,
                    reverse: m.reverse,
                });
            }
        }
        ReferenceIndex {
            k,
            w,
            genome_len: genome.len(),
            base_offset,
            table,
            max_occurrences: Self::DEFAULT_MAX_OCCURRENCES,
        }
    }

    /// Adjusts the repetitive-minimizer cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn with_max_occurrences(mut self, cap: usize) -> ReferenceIndex {
        assert!(cap > 0, "occurrence cap must be positive");
        self.max_occurrences = cap;
        self
    }

    /// Minimizer k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimizer window size.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Length of the indexed genome.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// First coordinate of the index's position space (0 unless built with
    /// [`ReferenceIndex::build_at`]/[`ReferenceIndex::build_span_at`]).
    pub fn base_offset(&self) -> RefPos {
        self.base_offset
    }

    /// One past the last coordinate of the index's position space:
    /// `base_offset + genome_len`.
    pub fn coord_end(&self) -> RefPos {
        self.base_offset + self.genome_len as RefPos
    }

    /// Number of distinct minimizer keys.
    pub fn distinct_minimizers(&self) -> usize {
        self.table.len()
    }

    /// Total number of (key, location) entries.
    pub fn total_entries(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// The repetitive-minimizer cap ([`ReferenceIndex::with_max_occurrences`]).
    pub fn max_occurrences(&self) -> usize {
        self.max_occurrences
    }

    /// Number of (key, location) entries hidden by the repetitive cap — keys
    /// with more than `max_occurrences` hits, which [`ReferenceIndex::lookup`]
    /// reports as empty.
    pub fn masked_entries(&self) -> usize {
        self.table
            .values()
            .filter(|hits| hits.len() > self.max_occurrences)
            .map(Vec::len)
            .sum()
    }

    /// Looks up a query minimizer, returning its reference hits, or an empty
    /// slice if the key is absent **or** more frequent than the repetitive
    /// cap.
    pub fn lookup(&self, m: &Minimizer) -> &[RefHit] {
        match self.table.get(&m.hash) {
            Some(hits) if hits.len() <= self.max_occurrences => hits,
            _ => &[],
        }
    }

    /// Looks up by raw hash (used by the PIM CAM model, which stores hashes
    /// directly).
    pub fn lookup_hash(&self, hash: u64) -> &[RefHit] {
        match self.table.get(&hash) {
            Some(hits) if hits.len() <= self.max_occurrences => hits,
            _ => &[],
        }
    }

    /// Iterates over all `(hash, hits)` pairs, **including** keys above the
    /// repetitive cap that [`ReferenceIndex::lookup`] masks. Loaders that
    /// program query-visible state (the PIM CAM/RAM image) must use
    /// [`ReferenceIndex::iter_unmasked`] instead, or they will count rows the
    /// functional model never reads.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Vec<RefHit>)> {
        self.table.iter()
    }

    /// Iterates over exactly the `(hash, hits)` pairs [`ReferenceIndex::lookup`]
    /// can return — keys at or below the repetitive cap.
    pub fn iter_unmasked(&self) -> impl Iterator<Item = (&u64, &Vec<RefHit>)> {
        self.table
            .iter()
            .filter(|(_, hits)| hits.len() <= self.max_occurrences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::GenomeBuilder;

    fn genome(n: usize, seed: u64) -> Genome {
        GenomeBuilder::new(n).seed(seed).build()
    }

    #[test]
    fn index_contains_every_reference_minimizer() {
        let g = genome(10_000, 1);
        let idx = ReferenceIndex::build(&g, 15, 10);
        for m in minimizers(g.sequence(), 15, 10) {
            let hits = idx.lookup(&m);
            assert!(
                hits.iter().any(|h| h.pos == m.pos),
                "minimizer at {} missing from index",
                m.pos
            );
        }
    }

    #[test]
    fn entry_count_matches_sketch_size() {
        let g = genome(10_000, 2);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let sketch = minimizers(g.sequence(), 15, 10);
        assert_eq!(idx.total_entries(), sketch.len());
        assert!(idx.distinct_minimizers() <= sketch.len());
        assert_eq!(idx.genome_len(), 10_000);
        assert_eq!((idx.k(), idx.w()), (15, 10));
    }

    #[test]
    fn absent_key_returns_empty() {
        let g = genome(1_000, 3);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let phantom = Minimizer {
            hash: 0xDEAD_BEEF_DEAD_BEEF,
            pos: 0,
            reverse: false,
        };
        assert!(idx.lookup(&phantom).is_empty());
        assert!(idx.lookup_hash(0xDEAD_BEEF_DEAD_BEEF).is_empty());
    }

    #[test]
    fn repetitive_minimizers_are_masked() {
        // A genome that is one repeated unit makes every minimizer highly
        // repetitive; with a low cap all lookups come back empty.
        let unit = genome(400, 4);
        let mut seq = genpip_genomics::DnaSeq::new();
        for _ in 0..50 {
            seq.extend_from_seq(unit.sequence());
        }
        let g = Genome::from_seq("repeats", seq);
        let idx = ReferenceIndex::build(&g, 15, 10).with_max_occurrences(4);
        let masked = minimizers(g.sequence(), 15, 10)
            .iter()
            .filter(|m| idx.lookup(m).is_empty())
            .count();
        let total = minimizers(g.sequence(), 15, 10).len();
        assert!(
            masked as f64 / total as f64 > 0.9,
            "only {masked}/{total} masked"
        );
    }

    #[test]
    fn iter_visits_all_entries() {
        let g = genome(5_000, 5);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let visited: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(visited, idx.total_entries());
    }

    #[test]
    fn iter_unmasked_visits_exactly_the_queryable_entries() {
        // Repeat-heavy genome with a low cap: `iter` still sees everything,
        // `iter_unmasked` sees only what `lookup` can return.
        let unit = genome(400, 6);
        let mut seq = genpip_genomics::DnaSeq::new();
        for _ in 0..20 {
            seq.extend_from_seq(unit.sequence());
        }
        let g = Genome::from_seq("repeats", seq);
        let idx = ReferenceIndex::build(&g, 15, 10).with_max_occurrences(4);
        assert!(idx.masked_entries() > 0, "test genome must mask something");
        let unmasked: usize = idx.iter_unmasked().map(|(_, v)| v.len()).sum();
        assert_eq!(unmasked, idx.total_entries() - idx.masked_entries());
        for (hash, hits) in idx.iter_unmasked() {
            assert!(hits.len() <= idx.max_occurrences());
            assert_eq!(idx.lookup_hash(*hash).len(), hits.len());
        }
    }

    #[test]
    fn span_shards_partition_the_whole_genome_sketch() {
        use std::collections::HashSet;
        let g = genome(10_000, 7);
        let (k, w) = (15, 10);
        let whole = ReferenceIndex::build(&g, k, w);
        let mut whole_entries: HashSet<(u64, RefPos, bool)> = HashSet::new();
        for (hash, hits) in whole.iter() {
            for h in hits {
                whole_entries.insert((*hash, h.pos, h.reverse));
            }
        }
        for n in [2usize, 3, 7] {
            let step = g.len().div_ceil(n);
            let mut seen: HashSet<(u64, RefPos, bool)> = HashSet::new();
            for s in 0..n {
                let span = (s * step).min(g.len())..((s + 1) * step).min(g.len());
                let shard = ReferenceIndex::build_span(&g, k, w, span.clone());
                for (hash, hits) in shard.iter() {
                    for h in hits {
                        assert!(
                            span.contains(&(h.pos as usize)),
                            "hit {} escaped span {span:?}",
                            h.pos
                        );
                        assert!(
                            seen.insert((*hash, h.pos, h.reverse)),
                            "duplicate hit at {} across shards",
                            h.pos
                        );
                    }
                }
            }
            assert_eq!(seen, whole_entries, "{n} shards lost or invented hits");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds genome")]
    fn out_of_range_span_rejected() {
        let g = genome(1_000, 8);
        let _ = ReferenceIndex::build_span(&g, 15, 10, 500..2_000);
    }

    #[test]
    fn base_offset_shifts_every_hit_past_the_u32_horizon() {
        // An index whose coordinate space starts beyond 4 Gbp: every stored
        // hit is the plain-index hit plus the offset, nothing truncates.
        let g = genome(5_000, 9);
        let offset: RefPos = 5_000_000_000; // > u32::MAX
        let plain = ReferenceIndex::build(&g, 15, 10);
        let shifted = ReferenceIndex::build_at(&g, 15, 10, offset);
        assert_eq!(shifted.base_offset(), offset);
        assert_eq!(shifted.coord_end(), offset + 5_000);
        assert_eq!(shifted.total_entries(), plain.total_entries());
        for (hash, hits) in plain.iter() {
            let moved = shifted.lookup_hash(*hash);
            assert_eq!(moved.len(), hits.len());
            for (a, b) in hits.iter().zip(moved) {
                assert_eq!(b.pos, offset + a.pos);
                assert!(b.pos > u32::MAX as RefPos);
                assert_eq!(b.reverse, a.reverse);
            }
        }
    }

    #[test]
    fn span_shards_agree_with_whole_index_under_offset() {
        let g = genome(4_000, 10);
        let offset: RefPos = (u32::MAX as RefPos) - 1_000; // straddles the boundary
        let whole = ReferenceIndex::build_at(&g, 15, 10, offset);
        let mut seen = 0usize;
        for span in [0..2_000usize, 2_000..4_000] {
            let shard = ReferenceIndex::build_span_at(&g, 15, 10, span.clone(), offset);
            for (hash, hits) in shard.iter() {
                for h in hits {
                    let local = (h.pos - offset) as usize;
                    assert!(span.contains(&local), "hit {local} escaped span {span:?}");
                    assert!(whole.lookup_hash(*hash).contains(h));
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, whole.total_entries());
    }
}
