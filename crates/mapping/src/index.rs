//! The reference minimizer index.
//!
//! The paper's Figure 1 ⓐ: an offline pass extracts minimizers from the
//! reference genome and stores them in a key–value hash table (minimizer →
//! locations). GenPIP materializes this table inside ReRAM CAM (keys) and
//! RAM (values) arrays; this module is the functional reference whose
//! contents get "programmed" into the `genpip-pim` seeding-unit model.

use crate::minimizer::{minimizers, Minimizer};
use genpip_genomics::Genome;
use std::collections::HashMap;
use std::ops::Range;

/// One reference hit: where a minimizer occurs in the genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefHit {
    /// Position of the k-mer's first base in the reference.
    ///
    /// `u32` caps the addressable reference at 4 Gbp per index;
    /// [`ReferenceIndex::build`] rejects longer genomes instead of silently
    /// wrapping. A [`crate::ShardedReferenceIndex`] carries the same 4 Gbp
    /// limit per shard (positions stay global coordinates).
    pub pos: u32,
    /// Strand flag of the canonical k-mer at that position.
    pub reverse: bool,
}

/// Hash table from minimizer hash to reference locations.
#[derive(Debug, Clone)]
pub struct ReferenceIndex {
    k: usize,
    w: usize,
    genome_len: usize,
    table: HashMap<u64, Vec<RefHit>>,
    max_occurrences: usize,
}

impl ReferenceIndex {
    /// Default cap on hits per minimizer: more frequent minimizers are
    /// treated as repetitive and skipped at query time (minimap2's
    /// `--mask-level` analogue).
    pub const DEFAULT_MAX_OCCURRENCES: usize = 128;

    /// Builds the index of `genome` with minimizer parameters `(k, w)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=32` or `w` is 0, or if the genome does
    /// not fit [`RefHit::pos`]'s `u32` position space (4 Gbp): build a
    /// [`crate::ShardedReferenceIndex`] over sub-4 Gbp shards instead of
    /// letting positions wrap.
    pub fn build(genome: &Genome, k: usize, w: usize) -> ReferenceIndex {
        Self::check_position_space(genome.len());
        let mut table: HashMap<u64, Vec<RefHit>> = HashMap::new();
        for m in minimizers(genome.sequence(), k, w) {
            table.entry(m.hash).or_default().push(RefHit {
                pos: m.pos,
                reverse: m.reverse,
            });
        }
        ReferenceIndex {
            k,
            w,
            genome_len: genome.len(),
            table,
            max_occurrences: Self::DEFAULT_MAX_OCCURRENCES,
        }
    }

    /// Builds the index over only the minimizers **owned** by `span`
    /// (a global position range of the genome) — one shard of a
    /// [`crate::ShardedReferenceIndex`].
    ///
    /// The sketched subsequence extends `w + k - 1` bases beyond each end of
    /// `span` (clamped to the genome), so every winnowing window that could
    /// witness an owned position exists in the shard exactly as it does in a
    /// whole-genome sketch; hits are then filtered to `span`. The union of
    /// the indexes built from a partition of `0..genome.len()` therefore
    /// holds precisely the whole-genome minimizer set, each hit exactly
    /// once, with global positions.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`ReferenceIndex::build`], or if
    /// `span` exceeds the genome.
    pub fn build_span(genome: &Genome, k: usize, w: usize, span: Range<usize>) -> ReferenceIndex {
        assert!(
            span.start <= span.end && span.end <= genome.len(),
            "shard span {span:?} exceeds genome of {} bases",
            genome.len()
        );
        Self::check_position_space(genome.len());
        let halo = w + k - 1;
        let ext_start = span.start.saturating_sub(halo);
        let ext_end = (span.end + halo).min(genome.len());
        let sub = genome.sequence().subseq(ext_start, ext_end - ext_start);
        let mut table: HashMap<u64, Vec<RefHit>> = HashMap::new();
        for m in minimizers(&sub, k, w) {
            let pos = ext_start + m.pos as usize;
            if span.contains(&pos) {
                table.entry(m.hash).or_default().push(RefHit {
                    pos: pos as u32,
                    reverse: m.reverse,
                });
            }
        }
        ReferenceIndex {
            k,
            w,
            genome_len: genome.len(),
            table,
            max_occurrences: Self::DEFAULT_MAX_OCCURRENCES,
        }
    }

    fn check_position_space(genome_len: usize) {
        assert!(
            u32::try_from(genome_len).is_ok(),
            "reference of {genome_len} bases exceeds the u32 position space \
             (4 Gbp limit per index/shard); split it across shards of a \
             ShardedReferenceIndex"
        );
    }

    /// Adjusts the repetitive-minimizer cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn with_max_occurrences(mut self, cap: usize) -> ReferenceIndex {
        assert!(cap > 0, "occurrence cap must be positive");
        self.max_occurrences = cap;
        self
    }

    /// Minimizer k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimizer window size.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Length of the indexed genome.
    pub fn genome_len(&self) -> usize {
        self.genome_len
    }

    /// Number of distinct minimizer keys.
    pub fn distinct_minimizers(&self) -> usize {
        self.table.len()
    }

    /// Total number of (key, location) entries.
    pub fn total_entries(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// The repetitive-minimizer cap ([`ReferenceIndex::with_max_occurrences`]).
    pub fn max_occurrences(&self) -> usize {
        self.max_occurrences
    }

    /// Number of (key, location) entries hidden by the repetitive cap — keys
    /// with more than `max_occurrences` hits, which [`ReferenceIndex::lookup`]
    /// reports as empty.
    pub fn masked_entries(&self) -> usize {
        self.table
            .values()
            .filter(|hits| hits.len() > self.max_occurrences)
            .map(Vec::len)
            .sum()
    }

    /// Looks up a query minimizer, returning its reference hits, or an empty
    /// slice if the key is absent **or** more frequent than the repetitive
    /// cap.
    pub fn lookup(&self, m: &Minimizer) -> &[RefHit] {
        match self.table.get(&m.hash) {
            Some(hits) if hits.len() <= self.max_occurrences => hits,
            _ => &[],
        }
    }

    /// Looks up by raw hash (used by the PIM CAM model, which stores hashes
    /// directly).
    pub fn lookup_hash(&self, hash: u64) -> &[RefHit] {
        match self.table.get(&hash) {
            Some(hits) if hits.len() <= self.max_occurrences => hits,
            _ => &[],
        }
    }

    /// Iterates over all `(hash, hits)` pairs, **including** keys above the
    /// repetitive cap that [`ReferenceIndex::lookup`] masks. Loaders that
    /// program query-visible state (the PIM CAM/RAM image) must use
    /// [`ReferenceIndex::iter_unmasked`] instead, or they will count rows the
    /// functional model never reads.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Vec<RefHit>)> {
        self.table.iter()
    }

    /// Iterates over exactly the `(hash, hits)` pairs [`ReferenceIndex::lookup`]
    /// can return — keys at or below the repetitive cap.
    pub fn iter_unmasked(&self) -> impl Iterator<Item = (&u64, &Vec<RefHit>)> {
        self.table
            .iter()
            .filter(|(_, hits)| hits.len() <= self.max_occurrences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::GenomeBuilder;

    fn genome(n: usize, seed: u64) -> Genome {
        GenomeBuilder::new(n).seed(seed).build()
    }

    #[test]
    fn index_contains_every_reference_minimizer() {
        let g = genome(10_000, 1);
        let idx = ReferenceIndex::build(&g, 15, 10);
        for m in minimizers(g.sequence(), 15, 10) {
            let hits = idx.lookup(&m);
            assert!(
                hits.iter().any(|h| h.pos == m.pos),
                "minimizer at {} missing from index",
                m.pos
            );
        }
    }

    #[test]
    fn entry_count_matches_sketch_size() {
        let g = genome(10_000, 2);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let sketch = minimizers(g.sequence(), 15, 10);
        assert_eq!(idx.total_entries(), sketch.len());
        assert!(idx.distinct_minimizers() <= sketch.len());
        assert_eq!(idx.genome_len(), 10_000);
        assert_eq!((idx.k(), idx.w()), (15, 10));
    }

    #[test]
    fn absent_key_returns_empty() {
        let g = genome(1_000, 3);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let phantom = Minimizer {
            hash: 0xDEAD_BEEF_DEAD_BEEF,
            pos: 0,
            reverse: false,
        };
        assert!(idx.lookup(&phantom).is_empty());
        assert!(idx.lookup_hash(0xDEAD_BEEF_DEAD_BEEF).is_empty());
    }

    #[test]
    fn repetitive_minimizers_are_masked() {
        // A genome that is one repeated unit makes every minimizer highly
        // repetitive; with a low cap all lookups come back empty.
        let unit = genome(400, 4);
        let mut seq = genpip_genomics::DnaSeq::new();
        for _ in 0..50 {
            seq.extend_from_seq(unit.sequence());
        }
        let g = Genome::from_seq("repeats", seq);
        let idx = ReferenceIndex::build(&g, 15, 10).with_max_occurrences(4);
        let masked = minimizers(g.sequence(), 15, 10)
            .iter()
            .filter(|m| idx.lookup(m).is_empty())
            .count();
        let total = minimizers(g.sequence(), 15, 10).len();
        assert!(
            masked as f64 / total as f64 > 0.9,
            "only {masked}/{total} masked"
        );
    }

    #[test]
    fn iter_visits_all_entries() {
        let g = genome(5_000, 5);
        let idx = ReferenceIndex::build(&g, 15, 10);
        let visited: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(visited, idx.total_entries());
    }

    #[test]
    fn iter_unmasked_visits_exactly_the_queryable_entries() {
        // Repeat-heavy genome with a low cap: `iter` still sees everything,
        // `iter_unmasked` sees only what `lookup` can return.
        let unit = genome(400, 6);
        let mut seq = genpip_genomics::DnaSeq::new();
        for _ in 0..20 {
            seq.extend_from_seq(unit.sequence());
        }
        let g = Genome::from_seq("repeats", seq);
        let idx = ReferenceIndex::build(&g, 15, 10).with_max_occurrences(4);
        assert!(idx.masked_entries() > 0, "test genome must mask something");
        let unmasked: usize = idx.iter_unmasked().map(|(_, v)| v.len()).sum();
        assert_eq!(unmasked, idx.total_entries() - idx.masked_entries());
        for (hash, hits) in idx.iter_unmasked() {
            assert!(hits.len() <= idx.max_occurrences());
            assert_eq!(idx.lookup_hash(*hash).len(), hits.len());
        }
    }

    #[test]
    fn span_shards_partition_the_whole_genome_sketch() {
        use std::collections::HashSet;
        let g = genome(10_000, 7);
        let (k, w) = (15, 10);
        let whole = ReferenceIndex::build(&g, k, w);
        let mut whole_entries: HashSet<(u64, u32, bool)> = HashSet::new();
        for (hash, hits) in whole.iter() {
            for h in hits {
                whole_entries.insert((*hash, h.pos, h.reverse));
            }
        }
        for n in [2usize, 3, 7] {
            let step = g.len().div_ceil(n);
            let mut seen: HashSet<(u64, u32, bool)> = HashSet::new();
            for s in 0..n {
                let span = (s * step).min(g.len())..((s + 1) * step).min(g.len());
                let shard = ReferenceIndex::build_span(&g, k, w, span.clone());
                for (hash, hits) in shard.iter() {
                    for h in hits {
                        assert!(
                            span.contains(&(h.pos as usize)),
                            "hit {} escaped span {span:?}",
                            h.pos
                        );
                        assert!(
                            seen.insert((*hash, h.pos, h.reverse)),
                            "duplicate hit at {} across shards",
                            h.pos
                        );
                    }
                }
            }
            assert_eq!(seen, whole_entries, "{n} shards lost or invented hits");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds genome")]
    fn out_of_range_span_rejected() {
        let g = genome(1_000, 8);
        let _ = ReferenceIndex::build_span(&g, 15, 10, 500..2_000);
    }
}
