//! The read mapper: a from-scratch minimap2-style pipeline.
//!
//! The paper's read-mapping step (Section 2.1, Figure 1 ➌) runs in four
//! phases, each implemented here as its own module:
//!
//! 1. **Indexing** ([`index`], [`shard`]) — extract `(w, k)` minimizers from
//!    the reference genome and store them in a hash table keyed by minimizer
//!    hash, valued by reference positions. GenPIP holds this table in its
//!    ReRAM CAM/RAM seeding unit (paper Section 4.4); the table is
//!    partitioned into position-range shards ([`ShardedReferenceIndex`]) so
//!    no single allocation — and no single CAM subarray group — holds the
//!    whole genome's index, with results bit-identical for every shard
//!    count.
//! 2. **Seeding** ([`seed`]) — query the read's minimizers against the table
//!    (fanning out across shards) to produce *anchors* (query-position,
//!    reference-position pairs).
//! 3. **Chaining** ([`chain`]) — a dynamic-programming pass that finds
//!    colinear anchor chains with minimap2's gap-cost scoring. The chaining
//!    score is what GenPIP's ER-CMR early-rejection thresholds against, and
//!    the DP is incremental so GenPIP's chunk-based pipeline can extend a
//!    read's chains chunk by chunk.
//! 4. **Alignment** ([`align`]) — banded affine-gap alignment of the read
//!    against the best chain's reference window, yielding the final mapping
//!    and alignment score.
//!
//! [`Mapper`] ties the phases together and reports the workload counters
//! (seed queries, anchors, chain DP evaluations, alignment cells) that drive
//! the hardware cost models in `genpip-pim` and `genpip-core`.
//!
//! # Example
//!
//! ```
//! use genpip_genomics::GenomeBuilder;
//! use genpip_mapping::{Mapper, MapperParams};
//!
//! let genome = GenomeBuilder::new(20_000).seed(11).build();
//! let mapper = Mapper::build(&genome, MapperParams::default());
//! let query = genome.sequence().subseq(5_000, 800);
//! let result = mapper.map(&query);
//! let mapping = result.mapping.expect("exact substring must map");
//! assert!(mapping.ref_start.abs_diff(5_000) < 50);
//! ```

pub mod align;
pub mod chain;
pub mod index;
pub mod mapper;
pub mod minimizer;
pub mod paf;
pub mod refset;
pub mod seed;
pub mod shard;

/// Repo-wide reference coordinate type.
///
/// Every position that names a base in a reference coordinate space —
/// [`Minimizer::pos`], [`RefHit::pos`], [`Anchor::{qpos,rpos}`](Anchor),
/// chain spans, index span ranges, PAF target coordinates — is 64-bit, so
/// references (and sharded coordinate spaces assembled from per-shard
/// offsets) are not capped at the 4 Gbp `u32` horizon.
pub type RefPos = u64;

pub use align::{Alignment, AlignmentParams, CigarOp};
pub use chain::{Chain, ChainParams, IncrementalChainer};
pub use index::{RefHit, ReferenceIndex};
pub use mapper::{Mapper, MapperParams, Mapping, MappingCounters, MappingResult, SeedScratch};
pub use minimizer::{minimizers, minimizers_into, Minimizer, MinimizerScratch};
pub use refset::{ReferenceMapping, ReferenceSet, SetMappingResult};
pub use seed::{Anchor, SeedBatch, Strand};
pub use shard::{ShardedReferenceIndex, Shards};
