//! Pull-based read sources for streaming pipelines.
//!
//! A [`ReadSource`] hands out [`SimulatedRead`]s one at a time, plus the
//! shared context a pipeline needs before the first read arrives (the
//! mapping reference, the pore model, the mean dwell). Two implementations:
//!
//! * [`DatasetStream`] — a cursor over a materialized [`SimulatedDataset`]
//!   (created with [`SimulatedDataset::stream`]);
//! * [`StreamingSimulator`] — synthesizes reads lazily from a
//!   [`DatasetProfile`] without ever materializing the dataset, bit-identical
//!   to `SimulatedDataset::generate(profile).reads` because both pull from
//!   the same deterministic per-read generator.
//!
//! Streaming drivers (`genpip_core::stream`) pull from a source under
//! backpressure, so peak memory stays proportional to the in-flight window
//! rather than the dataset.

use crate::profile::DatasetProfile;
use crate::simulate::{ReadFactory, SimulatedDataset, SimulatedRead};
use genpip_genomics::Genome;
use genpip_signal::PoreModel;
use std::fmt;
use std::sync::Arc;

/// A stable, cheaply clonable name for one registered [`ReadSource`].
///
/// Multi-source engines (the `Session` API in `genpip-core`) register each
/// source under a `SourceId` and report per-source progress and summaries
/// keyed by it. The id is an opaque handle: equality and ordering are by
/// name, clones share one allocation, and the name survives for the whole
/// session — results for a source are always attributed to the id it was
/// registered with.
///
/// ```
/// use genpip_datasets::SourceId;
///
/// let a = SourceId::new("flowcell-a");
/// let b: SourceId = "flowcell-a".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "flowcell-a");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(Arc<str>);

impl SourceId {
    /// Creates an id from any string-like name.
    pub fn new(name: impl AsRef<str>) -> SourceId {
        SourceId(Arc::from(name.as_ref()))
    }

    /// The name this id was created with.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.0)
    }
}

impl fmt::Debug for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SourceId({:?})", &*self.0)
    }
}

impl From<&str> for SourceId {
    fn from(name: &str) -> SourceId {
        SourceId::new(name)
    }
}

impl From<String> for SourceId {
    fn from(name: String) -> SourceId {
        SourceId::new(name)
    }
}

impl From<&SourceId> for SourceId {
    fn from(id: &SourceId) -> SourceId {
        id.clone()
    }
}

/// A pull-based producer of reads plus the run-wide context (reference
/// genome, signal chemistry) every pipeline needs up front.
///
/// Sources are stateful cursors: [`ReadSource::next_read`] advances and
/// returns `None` once exhausted. Implementations must be deterministic —
/// two fresh sources over the same underlying data yield the same reads in
/// the same order.
pub trait ReadSource {
    /// The mapping reference the reads should be aligned against.
    fn reference(&self) -> &Genome;

    /// The pore model the signals were (or will be) synthesized with, which
    /// the basecaller must decode with.
    fn pore_model(&self) -> &PoreModel;

    /// Mean dwell time in samples per base (sizes signal chunks).
    fn mean_dwell(&self) -> f64;

    /// Produces the next read, or `None` when the source is exhausted.
    fn next_read(&mut self) -> Option<SimulatedRead>;

    /// Reads still to come, when the source knows (for progress displays;
    /// infinite or unknown-length sources return `None`).
    fn reads_remaining(&self) -> Option<usize> {
        None
    }
}

/// Forwarding impl so engines that take sources by value (e.g. the
/// `Session` builder in `genpip-core`) also accept `&mut` borrows of a
/// caller-owned source.
impl<S: ReadSource + ?Sized> ReadSource for &mut S {
    fn reference(&self) -> &Genome {
        (**self).reference()
    }

    fn pore_model(&self) -> &PoreModel {
        (**self).pore_model()
    }

    fn mean_dwell(&self) -> f64 {
        (**self).mean_dwell()
    }

    fn next_read(&mut self) -> Option<SimulatedRead> {
        (**self).next_read()
    }

    fn reads_remaining(&self) -> Option<usize> {
        (**self).reads_remaining()
    }
}

/// Forwarding impl for boxed sources, the handoff currency of live
/// sessions: a control plane attaching a source to a *running* session
/// must ship it across a thread boundary as `Box<dyn ReadSource + Send>`.
impl<S: ReadSource + ?Sized> ReadSource for Box<S> {
    fn reference(&self) -> &Genome {
        (**self).reference()
    }

    fn pore_model(&self) -> &PoreModel {
        (**self).pore_model()
    }

    fn mean_dwell(&self) -> f64 {
        (**self).mean_dwell()
    }

    fn next_read(&mut self) -> Option<SimulatedRead> {
        (**self).next_read()
    }

    fn reads_remaining(&self) -> Option<usize> {
        (**self).reads_remaining()
    }
}

/// A [`ReadSource`] view over a materialized [`SimulatedDataset`]: yields
/// clones of the dataset's reads in id order.
pub struct DatasetStream<'a> {
    dataset: &'a SimulatedDataset,
    next: usize,
}

impl SimulatedDataset {
    /// A pull-based stream over this dataset's reads, in id order.
    pub fn stream(&self) -> DatasetStream<'_> {
        DatasetStream {
            dataset: self,
            next: 0,
        }
    }
}

impl ReadSource for DatasetStream<'_> {
    fn reference(&self) -> &Genome {
        &self.dataset.reference
    }

    fn pore_model(&self) -> &PoreModel {
        self.dataset.pore_model()
    }

    fn mean_dwell(&self) -> f64 {
        self.dataset.synthesizer().mean_dwell()
    }

    fn next_read(&mut self) -> Option<SimulatedRead> {
        let read = self.dataset.reads.get(self.next)?.clone();
        self.next += 1;
        Some(read)
    }

    fn reads_remaining(&self) -> Option<usize> {
        Some(self.dataset.reads.len() - self.next)
    }
}

/// An on-the-fly dataset generator: the [`ReadSource`] equivalent of
/// [`SimulatedDataset::generate`], but reads are synthesized one at a time
/// as the pipeline pulls them, so the dataset is never materialized.
///
/// Only the shared context is held resident — the reference genome, the
/// sequenced individual, the contaminant genome, and the RNG cursor — which
/// is O(genome), independent of `profile.n_reads`. The read stream is
/// bit-identical to the batch generator's `reads` vector.
pub struct StreamingSimulator {
    reference: Genome,
    factory: ReadFactory,
}

impl StreamingSimulator {
    /// Builds the shared genomes and chemistry for `profile`; reads are not
    /// generated until pulled.
    pub fn new(profile: &DatasetProfile) -> StreamingSimulator {
        let (reference, factory) = ReadFactory::new(profile);
        StreamingSimulator { reference, factory }
    }
}

impl ReadSource for StreamingSimulator {
    fn reference(&self) -> &Genome {
        &self.reference
    }

    fn pore_model(&self) -> &PoreModel {
        self.factory.synthesizer().model()
    }

    fn mean_dwell(&self) -> f64 {
        self.factory.synthesizer().mean_dwell()
    }

    fn next_read(&mut self) -> Option<SimulatedRead> {
        self.factory.next_read()
    }

    fn reads_remaining(&self) -> Option<usize> {
        Some(self.factory.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetProfile {
        DatasetProfile::ecoli().scaled(0.03)
    }

    #[test]
    fn streaming_simulator_is_bit_identical_to_batch_generation() {
        let profile = tiny();
        let batch = SimulatedDataset::generate(&profile);
        let mut lazy = StreamingSimulator::new(&profile);
        assert_eq!(lazy.reference(), &batch.reference);
        assert_eq!(lazy.pore_model(), batch.pore_model());
        assert_eq!(lazy.reads_remaining(), Some(batch.reads.len()));
        for expected in &batch.reads {
            assert_eq!(lazy.next_read().as_ref(), Some(expected));
        }
        assert_eq!(lazy.next_read(), None);
        assert_eq!(lazy.reads_remaining(), Some(0));
    }

    #[test]
    fn dataset_stream_yields_every_read_in_id_order() {
        let dataset = SimulatedDataset::generate(&tiny());
        let mut stream = dataset.stream();
        assert_eq!(stream.reads_remaining(), Some(dataset.reads.len()));
        let mut seen = 0usize;
        while let Some(read) = stream.next_read() {
            assert_eq!(read, dataset.reads[seen]);
            seen += 1;
        }
        assert_eq!(seen, dataset.reads.len());
        assert_eq!(stream.next_read(), None);
    }

    #[test]
    fn two_fresh_sources_agree() {
        let profile = tiny();
        let mut a = StreamingSimulator::new(&profile);
        let mut b = StreamingSimulator::new(&profile);
        while let Some(read) = a.next_read() {
            assert_eq!(b.next_read(), Some(read));
        }
        assert_eq!(b.next_read(), None);
    }
}
