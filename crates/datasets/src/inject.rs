//! Deterministic fault injection for robustness testing.
//!
//! [`FaultInjector`] wraps any [`ReadSource`] and corrupts a seeded,
//! reproducible subset of the reads it forwards. The corruption is a
//! non-finite sample in the raw signal — the basecaller raises a typed
//! `SignalFault` panic the moment it decodes the affected chunk, which is
//! exactly the fault class the `Session` engine's containment path
//! (retry / quarantine) exists to absorb.
//!
//! Determinism contract: injection decisions depend only on the injector's
//! seed and the order of `next_read` calls — never on time, thread
//! interleaving, or OS entropy. Two injectors with the same seed over the
//! same source corrupt the same reads, so tests can assert
//! `quarantined set == injected set` exactly.
//!
//! By default the *entire* signal is corrupted. That guarantees the very
//! first chunk any pipeline decodes faults, under every ER mode and chunk
//! geometry — QSR samples chunks sparsely, so a single targeted bad chunk
//! could be skipped and the read would survive, breaking the
//! quarantined == injected oracle. Use [`FaultInjector::chunk`] when a
//! mid-read fault (after some chunks already succeeded) is the point of
//! the test.

use crate::simulate::SimulatedRead;
use crate::source::ReadSource;
use genpip_genomics::rng::{derive, Rng, SeededRng};
use genpip_genomics::Genome;
use genpip_signal::PoreModel;

/// A [`ReadSource`] adapter that corrupts a deterministic fraction of the
/// reads flowing through it and records which ids it hit.
pub struct FaultInjector<S> {
    inner: S,
    rng: SeededRng,
    rate: f64,
    chunk: Option<usize>,
    samples_per_chunk: usize,
    stall: Option<(usize, u64)>,
    pulled: usize,
    injected: Vec<u32>,
}

impl<S: ReadSource> FaultInjector<S> {
    /// Wraps `inner`, corrupting each read independently with probability
    /// `rate` (clamped to `[0, 1]`), decided by a generator derived from
    /// `seed` so different seeds give independent fault patterns.
    pub fn new(inner: S, rate: f64, seed: u64) -> FaultInjector<S> {
        FaultInjector {
            inner,
            rng: derive(seed, 0xFA17),
            rate: rate.clamp(0.0, 1.0),
            chunk: None,
            samples_per_chunk: 0,
            stall: None,
            pulled: 0,
            injected: Vec::new(),
        }
    }

    /// Switches from whole-signal corruption to a single bad sample at the
    /// start of chunk `chunk` (requires [`FaultInjector::samples_per_chunk`]
    /// to locate the offset). Reads too short to contain that chunk are
    /// corrupted at their last sample instead, so an injected read always
    /// faults.
    pub fn chunk(mut self, chunk: usize) -> FaultInjector<S> {
        self.chunk = Some(chunk);
        self
    }

    /// Sets the chunk geometry used by [`FaultInjector::chunk`] to convert
    /// a chunk index into a sample offset.
    pub fn samples_per_chunk(mut self, samples: usize) -> FaultInjector<S> {
        self.samples_per_chunk = samples;
        self
    }

    /// Sleeps `millis` before every `every`-th pull, simulating a stalled
    /// flowcell feed. Purely a slow-source stressor: it changes timing, not
    /// data, so bit-identity oracles still hold.
    pub fn stall(mut self, every: usize, millis: u64) -> FaultInjector<S> {
        self.stall = Some((every.max(1), millis));
        self
    }

    /// The ids this injector has corrupted so far, in pull order.
    pub fn injected_ids(&self) -> &[u32] {
        &self.injected
    }

    fn corrupt(&mut self, read: &mut SimulatedRead) {
        match self.chunk {
            None => {
                for s in &mut read.signal.samples {
                    *s = f32::NAN;
                }
            }
            Some(chunk) => {
                let offset = chunk
                    .saturating_mul(self.samples_per_chunk)
                    .min(read.signal.samples.len().saturating_sub(1));
                if let Some(s) = read.signal.samples.get_mut(offset) {
                    *s = f32::NAN;
                }
            }
        }
        self.injected.push(read.id);
    }
}

impl<S: ReadSource> ReadSource for FaultInjector<S> {
    fn reference(&self) -> &Genome {
        self.inner.reference()
    }

    fn pore_model(&self) -> &PoreModel {
        self.inner.pore_model()
    }

    fn mean_dwell(&self) -> f64 {
        self.inner.mean_dwell()
    }

    fn next_read(&mut self) -> Option<SimulatedRead> {
        if let Some((every, millis)) = self.stall {
            if self.pulled.is_multiple_of(every) {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
        }
        self.pulled += 1;
        let mut read = self.inner.next_read()?;
        // Always draw, even at rate 0: the decision stream stays aligned
        // with the pull stream, so the injected set is a pure function of
        // (seed, rate) regardless of what the caller does between pulls.
        let roll = self.rng.random::<f64>();
        if roll < self.rate && !read.signal.samples.is_empty() {
            self.corrupt(&mut read);
        }
        Some(read)
    }

    fn reads_remaining(&self) -> Option<usize> {
        self.inner.reads_remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;
    use crate::source::StreamingSimulator;

    fn tiny() -> DatasetProfile {
        DatasetProfile::ecoli().scaled(0.03)
    }

    #[test]
    fn same_seed_injects_the_same_reads() {
        let profile = tiny();
        let mut a = FaultInjector::new(StreamingSimulator::new(&profile), 0.2, 7);
        let mut b = FaultInjector::new(StreamingSimulator::new(&profile), 0.2, 7);
        while let Some(read) = a.next_read() {
            let twin = b.next_read().expect("same length");
            assert_eq!(twin.id, read.id);
            // Compare bit patterns: NaN != NaN under PartialEq, but the
            // corruption itself must still be reproducible.
            let bits = |r: &SimulatedRead| -> Vec<u32> {
                r.signal.samples.iter().map(|s| s.to_bits()).collect()
            };
            assert_eq!(bits(&twin), bits(&read));
        }
        assert_eq!(b.next_read(), None);
        assert_eq!(a.injected_ids(), b.injected_ids());
        assert!(
            !a.injected_ids().is_empty(),
            "rate 0.2 should hit something"
        );
    }

    #[test]
    fn rate_zero_is_a_transparent_wrapper() {
        let profile = tiny();
        let mut plain = StreamingSimulator::new(&profile);
        let mut wrapped = FaultInjector::new(StreamingSimulator::new(&profile), 0.0, 99);
        while let Some(read) = plain.next_read() {
            assert_eq!(wrapped.next_read(), Some(read));
        }
        assert_eq!(wrapped.next_read(), None);
        assert!(wrapped.injected_ids().is_empty());
    }

    #[test]
    fn injected_reads_carry_non_finite_signal() {
        let profile = tiny();
        let mut injector = FaultInjector::new(StreamingSimulator::new(&profile), 0.3, 11);
        let mut corrupted = Vec::new();
        while let Some(read) = injector.next_read() {
            if read.signal.samples.iter().any(|s| !s.is_finite()) {
                corrupted.push(read.id);
            }
        }
        assert_eq!(corrupted, injector.injected_ids());
    }

    #[test]
    fn targeted_chunk_mode_corrupts_one_sample() {
        let profile = tiny();
        let mut injector = FaultInjector::new(StreamingSimulator::new(&profile), 1.0, 3)
            .chunk(1)
            .samples_per_chunk(100);
        let read = injector.next_read().expect("profile has reads");
        let bad: Vec<usize> = read
            .signal
            .samples
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_finite())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0], 100.min(read.signal.samples.len() - 1));
    }
}
