//! Dataset generation: genomes, reads, raw signals, ground truth.

use crate::profile::DatasetProfile;
use genpip_genomics::rng::Rng;
use genpip_genomics::rng::{self, SeededRng};
use genpip_genomics::{DnaSeq, ErrorModel, Genome, GenomeBuilder, ReadOrigin};
use genpip_signal::{NoiseProfile, PoreModel, ReadSignal, SignalSynthesizer};

/// One simulated read: its raw signal plus everything the oracle needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedRead {
    /// Read id (position in the dataset).
    pub id: u32,
    /// The raw signal (with embedded true sequence).
    pub signal: ReadSignal,
    /// Where the read came from.
    pub origin: ReadOrigin,
    /// The base noise multiplier the signal was drawn with (ground truth for
    /// calibration diagnostics; ≳2 means the read belongs to the low-quality
    /// population).
    pub noise_sigma: f64,
}

impl SimulatedRead {
    /// `true` if the read was drawn with the low-quality noise profile.
    pub fn is_low_quality_truth(&self) -> bool {
        self.noise_sigma >= 2.0
    }
}

/// A complete synthetic dataset.
#[derive(Debug, Clone)]
pub struct SimulatedDataset {
    /// The profile that generated it.
    pub profile: DatasetProfile,
    /// The mapping reference.
    pub reference: Genome,
    /// The simulated reads, id-ordered.
    pub reads: Vec<SimulatedRead>,
    synth: SignalSynthesizer,
}

/// The deterministic per-read generator behind both dataset paths: the batch
/// [`SimulatedDataset::generate`] loop and the lazy
/// [`crate::StreamingSimulator`] pull one read at a time from the same RNG
/// stream, so the two paths are bit-identical by construction.
///
/// Read `N` depends on the draws of reads `0..N`, which is why the factory
/// is a stateful cursor rather than a random-access function.
pub(crate) struct ReadFactory {
    profile: DatasetProfile,
    individual: DnaSeq,
    contaminant: Genome,
    synth: SignalSynthesizer,
    rng: SeededRng,
    next_id: u32,
}

impl ReadFactory {
    /// Builds the shared genomes and signal chemistry for `profile`,
    /// returning the mapping reference alongside the read cursor.
    pub(crate) fn new(profile: &DatasetProfile) -> (Genome, ReadFactory) {
        let reference = GenomeBuilder::new(profile.genome_len)
            .seed(profile.seed)
            .gc_fraction(profile.genome_gc)
            .repeat_fraction(profile.repeat_fraction)
            .name(profile.name)
            .build();

        // The sequenced individual: the reference plus variants.
        let mut variant_rng = rng::derive(profile.seed, 0x766172); // "var"
        let (individual, _) = ErrorModel::with_total_rate(profile.variant_rate)
            .apply(reference.sequence(), &mut variant_rng);

        // The contaminant genome: unrelated sequence, same composition.
        let contaminant = GenomeBuilder::new((profile.genome_len / 4).max(20_000))
            .seed(profile.seed ^ 0xC027A317A27)
            .gc_fraction(profile.genome_gc)
            .build();

        let pore = PoreModel::synthetic(profile.pore_k, profile.pore_seed);
        let factory = ReadFactory {
            profile: profile.clone(),
            individual,
            contaminant,
            synth: SignalSynthesizer::new(pore),
            rng: rng::derive(profile.seed, 0x726561647322), // "reads"
            next_id: 0,
        };
        (reference, factory)
    }

    /// The signal chemistry reads are synthesized with.
    pub(crate) fn synthesizer(&self) -> &SignalSynthesizer {
        &self.synth
    }

    /// Reads not yet generated.
    pub(crate) fn remaining(&self) -> usize {
        self.profile.n_reads - self.next_id as usize
    }

    /// Generates the next read, or `None` once `profile.n_reads` exist.
    pub(crate) fn next_read(&mut self) -> Option<SimulatedRead> {
        if self.remaining() == 0 {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let profile = &self.profile;
        let rng = &mut self.rng;
        let len = profile.lengths.sample(rng, profile.min_read_len);

        // Population draws: contaminant? low-quality?
        let is_contaminant = rng.random::<f64>() < profile.contaminant_fraction;
        let is_low_quality = rng.random::<f64>() < profile.low_quality_fraction;

        let (truth, origin) = if is_contaminant {
            let len = len.min(self.contaminant.len());
            let start = rng.random_range(0..=self.contaminant.len() - len);
            (
                self.contaminant.sequence().subseq(start, len),
                ReadOrigin::Contaminant,
            )
        } else {
            let len = len.min(self.individual.len());
            let start = rng.random_range(0..=self.individual.len() - len);
            let reverse = rng.random::<bool>();
            let span = self.individual.subseq(start, len);
            let seq = if reverse {
                span.reverse_complement()
            } else {
                span
            };
            (
                seq,
                ReadOrigin::Reference {
                    start,
                    len,
                    reverse,
                },
            )
        };

        let noise_sigma = if is_low_quality {
            rng::normal(rng, profile.lq_sigma_mean, profile.lq_sigma_std).max(2.2)
        } else {
            let mu = profile.hq_sigma_median.ln();
            rng::log_normal(rng, mu, profile.hq_sigma_logspread).clamp(0.55, 1.9)
        };

        let noise = NoiseProfile {
            base_sigma: noise_sigma,
            sigma_wander: profile.sigma_wander,
            wander_corr_bases: profile.wander_corr_bases,
            drift_per_kilosample: 0.0,
        };
        let signal = self.synth.synthesize_with_profile(
            &truth,
            &noise,
            profile.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        Some(SimulatedRead {
            id,
            signal,
            origin,
            noise_sigma,
        })
    }
}

impl SimulatedDataset {
    /// Generates the dataset described by `profile`. Deterministic in the
    /// profile's seeds.
    pub fn generate(profile: &DatasetProfile) -> SimulatedDataset {
        let (reference, mut factory) = ReadFactory::new(profile);
        let mut reads = Vec::with_capacity(profile.n_reads);
        while let Some(read) = factory.next_read() {
            reads.push(read);
        }
        SimulatedDataset {
            profile: profile.clone(),
            reference,
            reads,
            synth: factory.synth,
        }
    }

    /// The pore model the signals were generated with (and the basecaller
    /// must decode with).
    pub fn pore_model(&self) -> &PoreModel {
        self.synth.model()
    }

    /// The signal synthesizer (mean dwell etc.).
    pub fn synthesizer(&self) -> &SignalSynthesizer {
        &self.synth
    }

    /// Total raw-signal samples across all reads.
    pub fn total_samples(&self) -> usize {
        self.reads.iter().map(|r| r.signal.samples.len()).sum()
    }

    /// Total true bases across all reads.
    pub fn total_true_bases(&self) -> usize {
        self.reads.iter().map(|r| r.signal.truth.len()).sum()
    }

    /// The ground-truth fraction of contaminant reads.
    pub fn contaminant_fraction_truth(&self) -> f64 {
        self.reads
            .iter()
            .filter(|r| r.origin == ReadOrigin::Contaminant)
            .count() as f64
            / self.reads.len().max(1) as f64
    }

    /// The ground-truth fraction of low-quality reads.
    pub fn low_quality_fraction_truth(&self) -> f64 {
        self.reads
            .iter()
            .filter(|r| r.is_low_quality_truth())
            .count() as f64
            / self.reads.len().max(1) as f64
    }

    /// The true sequence of read `id` (panics if out of range).
    pub fn truth_of(&self, id: u32) -> &DnaSeq {
        &self.reads[id as usize].signal.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DatasetProfile;

    fn tiny() -> DatasetProfile {
        DatasetProfile::ecoli().scaled(0.03)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SimulatedDataset::generate(&tiny());
        let b = SimulatedDataset::generate(&tiny());
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.reads, b.reads);
    }

    #[test]
    fn read_count_and_lengths_match_profile() {
        let p = tiny();
        let d = SimulatedDataset::generate(&p);
        assert_eq!(d.reads.len(), p.n_reads);
        for r in &d.reads {
            assert!(r.signal.truth.len() >= p.min_read_len);
            assert!(!r.signal.samples.is_empty());
            // Signal length tracks dwell (8 samples/base ± randomness).
            let ratio = r.signal.samples.len() as f64 / r.signal.truth.len() as f64;
            assert!((ratio - 8.0).abs() < 2.0, "dwell ratio {ratio}");
        }
    }

    #[test]
    fn population_fractions_are_close_to_profile() {
        let p = DatasetProfile::ecoli().scaled(0.5);
        let d = SimulatedDataset::generate(&p);
        let cont = d.contaminant_fraction_truth();
        let lq = d.low_quality_fraction_truth();
        assert!(
            (cont - p.contaminant_fraction).abs() < 0.05,
            "contaminant {cont}"
        );
        assert!(
            (lq - p.low_quality_fraction).abs() < 0.06,
            "low quality {lq}"
        );
    }

    #[test]
    fn reference_reads_point_into_the_reference() {
        let d = SimulatedDataset::generate(&tiny());
        for r in &d.reads {
            if let ReadOrigin::Reference { start, len, .. } = r.origin {
                assert!(start + len <= d.reference.len());
                assert_eq!(r.signal.truth.len(), len);
            }
        }
    }

    #[test]
    fn noise_sigma_separates_populations() {
        let d = SimulatedDataset::generate(&DatasetProfile::ecoli().scaled(0.2));
        for r in &d.reads {
            if r.is_low_quality_truth() {
                assert!(r.noise_sigma >= 2.2);
            } else {
                assert!(r.noise_sigma <= 1.9);
            }
        }
    }

    #[test]
    fn totals_are_consistent() {
        let d = SimulatedDataset::generate(&tiny());
        assert_eq!(
            d.total_true_bases(),
            d.reads.iter().map(|r| r.signal.truth.len()).sum::<usize>()
        );
        assert!(d.total_samples() > d.total_true_bases() * 5);
        assert_eq!(d.truth_of(0), &d.reads[0].signal.truth);
    }
}
