//! Dataset profiles.

use genpip_genomics::rng::{self, SeededRng};

/// Read-length sampling model.
///
/// The paper's two datasets have differently shaped length distributions
/// (Table 1): E. coli has mean > median (the classic right-skewed log-normal
/// of long-read runs), while the human run has mean *below* median (a
/// population of short degraded fragments drags the mean down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthModel {
    /// Right-skewed log-normal parameterized by its mean and median
    /// (requires mean ≥ median).
    LogNormal {
        /// Distribution mean in bases.
        mean: f64,
        /// Distribution median in bases.
        median: f64,
    },
    /// A mostly-Gaussian bulk around `median` with a uniform short-fragment
    /// tail: `short_frac` of reads are uniform in `[min, median]`. Produces
    /// mean < median.
    ShortTailed {
        /// Bulk centre in bases.
        median: f64,
        /// Bulk standard deviation in bases.
        spread: f64,
        /// Fraction of short-fragment reads.
        short_frac: f64,
    },
}

impl LengthModel {
    /// Samples one read length, clamped to `min_len`.
    pub fn sample(&self, rng: &mut SeededRng, min_len: usize) -> usize {
        use genpip_genomics::rng::Rng;
        let len = match *self {
            LengthModel::LogNormal { mean, median } => {
                let (mu, sigma) = rng::log_normal_params(mean, median);
                rng::log_normal(rng, mu, sigma)
            }
            LengthModel::ShortTailed {
                median,
                spread,
                short_frac,
            } => {
                if rng.random::<f64>() < short_frac {
                    rng.random_range(min_len as f64..median)
                } else {
                    rng::normal(rng, median * 1.08, spread)
                }
            }
        };
        (len.max(min_len as f64)) as usize
    }
}

/// Everything needed to generate one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name (`"ecoli"`, `"human"`).
    pub name: &'static str,
    /// Master seed; every derived stream comes from this.
    pub seed: u64,
    /// Reference genome length in bases.
    pub genome_len: usize,
    /// Reference GC fraction.
    pub genome_gc: f64,
    /// Fraction of the reference occupied by copied repeats.
    pub repeat_fraction: f64,
    /// Number of reads to simulate.
    pub n_reads: usize,
    /// Read-length model.
    pub lengths: LengthModel,
    /// Minimum read length.
    pub min_read_len: usize,
    /// Fraction of reads drawn with the low-quality noise profile
    /// (the population read quality control discards; ≈20.5 % in the
    /// paper's E. coli analysis, Section 2.3).
    pub low_quality_fraction: f64,
    /// Fraction of reads drawn from a contaminant genome (the unmapped
    /// population; ≈10 % in the paper's E. coli analysis).
    pub contaminant_fraction: f64,
    /// Median noise multiplier of high-quality reads (log-normal).
    pub hq_sigma_median: f64,
    /// Log-spread of the high-quality noise multiplier.
    pub hq_sigma_logspread: f64,
    /// Mean noise multiplier of low-quality reads (Gaussian).
    pub lq_sigma_mean: f64,
    /// Spread of the low-quality noise multiplier.
    pub lq_sigma_std: f64,
    /// Within-read log-noise wander (drives the chunk-quality variation of
    /// Figure 7).
    pub sigma_wander: f64,
    /// Correlation length of the wander, in bases.
    pub wander_corr_bases: f64,
    /// Divergence between the sequenced individual and the reference
    /// (substitution+indel rate applied once to the reference).
    pub variant_rate: f64,
    /// Pore model k (fixes the basecaller state space; 3 ⇒ 64 states).
    pub pore_k: usize,
    /// Pore model seed (the "chemistry").
    pub pore_seed: u64,
}

impl DatasetProfile {
    /// The E. coli-like profile, scaled from the paper's dataset
    /// (4.6 Mb genome, 58 k reads, mean length 9 kb) to a size a laptop
    /// simulates in seconds (300 kb genome, 700 reads, mean length 3 kb).
    /// Quality structure follows Section 2.3: ≈20.5 % low-quality reads and
    /// ≈10 % contaminants.
    pub fn ecoli() -> DatasetProfile {
        DatasetProfile {
            name: "ecoli",
            seed: 0xEC011,
            genome_len: 300_000,
            genome_gc: 0.508, // E. coli K-12 GC content
            repeat_fraction: 0.05,
            n_reads: 700,
            lengths: LengthModel::LogNormal {
                mean: 3_000.0,
                median: 2_880.0,
            },
            min_read_len: 400,
            low_quality_fraction: 0.205,
            contaminant_fraction: 0.10,
            hq_sigma_median: 1.30,
            hq_sigma_logspread: 0.18,
            lq_sigma_mean: 2.9,
            lq_sigma_std: 0.25,
            sigma_wander: 0.16,
            wander_corr_bases: 500.0,
            variant_rate: 0.01,
            pore_k: 3,
            pore_seed: 7,
        }
    }

    /// The human-like profile (NA12878 run, Table 1): higher overall
    /// quality (mean Q11.3), shorter reads with mean < median, a smaller
    /// low-quality population, and a larger, more repetitive genome.
    pub fn human() -> DatasetProfile {
        DatasetProfile {
            name: "human",
            seed: 0x4B12878,
            genome_len: 1_000_000,
            genome_gc: 0.41, // human GC content
            repeat_fraction: 0.25,
            n_reads: 1_000,
            lengths: LengthModel::ShortTailed {
                median: 2_150.0,
                spread: 300.0,
                short_frac: 0.32,
            },
            min_read_len: 400,
            low_quality_fraction: 0.09,
            contaminant_fraction: 0.08,
            hq_sigma_median: 1.02,
            hq_sigma_logspread: 0.14,
            lq_sigma_mean: 2.9,
            lq_sigma_std: 0.25,
            sigma_wander: 0.14,
            wander_corr_bases: 500.0,
            variant_rate: 0.008,
            pore_k: 3,
            pore_seed: 7,
        }
    }

    /// A constant-length, single-population profile for latency and
    /// scheduling experiments: `n_reads` reads of ~`read_len` bases over an
    /// E. coli-like genome (grown to fit the reads), with the low-quality
    /// and contaminant populations removed so every read survives to full
    /// processing. The kernels bench and the head-of-line latency tests
    /// build their mixed short/long workloads from exactly this
    /// constructor, so what is benchmarked is what is tested.
    ///
    /// # Panics
    ///
    /// Panics unless `read_len` is finite and ≥ 1.
    pub fn uniform(name: &'static str, n_reads: usize, read_len: f64) -> DatasetProfile {
        assert!(
            read_len.is_finite() && read_len >= 1.0,
            "read length must be finite and >= 1"
        );
        let mut p = DatasetProfile::ecoli().scaled(0.05);
        p.name = name;
        p.seed ^= read_len as u64;
        p.genome_len = p.genome_len.max(2 * read_len as usize);
        p.n_reads = n_reads;
        p.lengths = LengthModel::LogNormal {
            mean: read_len,
            median: read_len,
        };
        p.low_quality_fraction = 0.0;
        p.contaminant_fraction = 0.0;
        p
    }

    /// Scales the dataset size (genome length, read count) by `factor`,
    /// keeping per-read properties — handy for fast tests.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(mut self, factor: f64) -> DatasetProfile {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        self.genome_len = ((self.genome_len as f64 * factor) as usize).max(20_000);
        self.n_reads = ((self.n_reads as f64 * factor) as usize).max(8);
        self
    }

    /// Generates the dataset (convenience for
    /// [`crate::SimulatedDataset::generate`]).
    pub fn generate(&self) -> crate::SimulatedDataset {
        crate::SimulatedDataset::generate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::rng::seeded;

    #[test]
    fn log_normal_lengths_have_right_skew() {
        let model = LengthModel::LogNormal {
            mean: 3_000.0,
            median: 2_880.0,
        };
        let mut rng = seeded(1);
        let lens: Vec<f64> = (0..20_000)
            .map(|_| model.sample(&mut rng, 100) as f64)
            .collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let mut sorted = lens.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((mean - 3_000.0).abs() / 3_000.0 < 0.05, "mean {mean}");
        assert!((median - 2_880.0).abs() / 2_880.0 < 0.05, "median {median}");
        assert!(mean > median);
    }

    #[test]
    fn short_tailed_lengths_have_left_skew() {
        let model = LengthModel::ShortTailed {
            median: 2_050.0,
            spread: 450.0,
            short_frac: 0.22,
        };
        let mut rng = seeded(2);
        let lens: Vec<f64> = (0..20_000)
            .map(|_| model.sample(&mut rng, 400) as f64)
            .collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let mut sorted = lens.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean < median, "mean {mean} vs median {median}");
    }

    #[test]
    fn min_length_is_respected() {
        let model = LengthModel::ShortTailed {
            median: 500.0,
            spread: 400.0,
            short_frac: 0.5,
        };
        let mut rng = seeded(3);
        assert!((0..5_000).all(|_| model.sample(&mut rng, 400) >= 400));
    }

    #[test]
    fn profiles_mirror_paper_structure() {
        let e = DatasetProfile::ecoli();
        let h = DatasetProfile::human();
        // E. coli: more low-quality reads, longer reads, smaller genome.
        assert!(e.low_quality_fraction > h.low_quality_fraction);
        assert!(e.genome_len < h.genome_len);
        assert!(h.repeat_fraction > e.repeat_fraction);
        // Same chemistry.
        assert_eq!(e.pore_k, h.pore_k);
        assert_eq!(e.pore_seed, h.pore_seed);
    }

    #[test]
    fn scaling_shrinks_but_clamps() {
        let p = DatasetProfile::ecoli().scaled(0.01);
        assert_eq!(p.genome_len, 20_000);
        assert!(p.n_reads >= 8);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = DatasetProfile::ecoli().scaled(0.0);
    }
}
