//! Synthetic nanopore datasets.
//!
//! The paper evaluates on two ONT R9 datasets (Table 1): an E. coli run
//! (Loman lab R9 release) and a human NA12878 run (PRJEB30620). Neither is
//! redistributable here, so this crate generates synthetic stand-ins that
//! preserve the properties the evaluation depends on:
//!
//! * read-length distribution (heavy-tailed, with the short-read population
//!   that limits early rejection on few-chunk reads — Section 6.3),
//! * per-read quality mixture (a low-quality population of ≈20 % for E. coli
//!   / ≈8 % for human, giving the Table 1 quality means and the Figure 7
//!   bands),
//! * within-read quality correlation (chunk quality varies slowly along a
//!   read),
//! * a contaminant population (≈10 % for E. coli) that basecalls fine but
//!   cannot map — the "unmapped reads" that ER-CMR exists to kill,
//! * reference-vs-individual divergence (reads are drawn from a lightly
//!   mutated copy of the reference).
//!
//! # Example
//!
//! ```
//! use genpip_datasets::DatasetProfile;
//!
//! // A miniature dataset for quick experimentation.
//! let profile = DatasetProfile::ecoli().scaled(0.02);
//! let dataset = profile.generate();
//! assert_eq!(dataset.reads.len(), profile.n_reads);
//! assert!(dataset.reads.iter().all(|r| !r.signal.samples.is_empty()));
//! ```

pub mod inject;
pub mod profile;
pub mod simulate;
pub mod source;

pub use inject::FaultInjector;
pub use profile::{DatasetProfile, LengthModel};
pub use simulate::{SimulatedDataset, SimulatedRead};
pub use source::{DatasetStream, ReadSource, SourceId, StreamingSimulator};
