//! On-disk input for GenPIP sessions: the GSC raw-signal container and
//! session checkpoint files.
//!
//! Every `ReadSource` elsewhere in the workspace is synthetic or in-memory;
//! the sequencers the paper targets deliver raw nanopore signal from disk,
//! and run I/O is a first-class part of the end-to-end pipeline. This crate
//! supplies that input side:
//!
//! * [`gsc`] — the **G**enPIP **S**ignal **C**ontainer: a FAST5-like binary
//!   file holding a whole simulated sequencing run (chemistry metadata,
//!   reference, per-read raw signal with ground truth, per-record checksums,
//!   and a trailing offset table for O(1) seeks). [`GscWriter`] packs any
//!   [`genpip_datasets::ReadSource`] to disk; [`GscReadSource`] streams one
//!   back, bit-identical to the in-memory source it was packed from, and
//!   [`GscReadSource::open_at`] starts at an arbitrary read index — the
//!   primitive behind mid-session file attach and checkpoint/resume.
//! * [`checkpoint`] — the checkpoint file a streaming run emits
//!   periodically (and on drain): per-source read offsets plus
//!   emitted/failed/retried counters and output byte offsets, enough to
//!   restart a killed run with a byte-identical output suffix.
//!
//! Corruption anywhere — truncation, bad magic, checksum mismatch,
//! out-of-range offsets — surfaces as a typed [`GscError`] (or
//! [`CheckpointError`]), never a panic, so CLI front ends can exit cleanly.
//!
//! Like the rest of the workspace, everything is implemented in-repo with
//! no external dependencies: serialization is hand-rolled little-endian
//! with FNV-1a checksums.

pub mod checkpoint;
pub mod gsc;

pub use checkpoint::{CheckpointError, CheckpointFile, FastqMark, SourceMark};
pub use gsc::{
    pack_source, GscError, GscMeta, GscReadSource, GscReader, GscStatus, GscSummary, GscWriter,
};
