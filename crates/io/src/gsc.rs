//! The GenPIP Signal Container (GSC): an indexed on-disk raw-signal format.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! header   magic "GENPIPSC" · version u32 · flags u32
//!          pore k u32 · event std f32 · mean dwell f64 · 4^k level f32s
//!          reference name (u32 len + UTF-8) · reference (u64 bases + 2-bit packed)
//!          read count u64 · header FNV-1a checksum u64
//! records  read count ×:
//!          id u32 · noise sigma f64 · origin (tag u8 [+ start u64 + len u64 + rev u8])
//!          truth (u64 bases + 2-bit packed) · sample count u64
//!          samples f32 × n · base index u32 × n · record FNV-1a checksum u64
//! trailer  record offsets u64 × read count · table FNV-1a checksum u64
//!          table position u64 · read count u64 · magic "GSCINDEX"
//! ```
//!
//! The header embeds the full chemistry (pore model, mean dwell) and the
//! mapping reference, so a `.gsc` file is self-describing: a
//! [`GscReadSource`] over it satisfies every `ReadSource` obligation without
//! out-of-band state. Records carry the complete [`SimulatedRead`] —
//! including ground-truth annotation (true sequence, per-sample base index,
//! origin, noise draw), the moral equivalent of FAST5 analysis groups — so
//! streaming from disk is **bit-identical** to streaming from memory and the
//! downstream evaluation oracle keeps working.
//!
//! The fixed-size tail makes the offset table discoverable from the end of
//! the file, and the table makes read *k* an O(1) seek — the primitive
//! behind mid-session attach at an offset and checkpoint/resume.
//!
//! Every decode path is hardened: lengths are checked against the file size
//! before allocation, all invariants are validated before constructing
//! domain types, and corruption surfaces as a typed [`GscError`], never a
//! panic.

use genpip_datasets::{ReadSource, SimulatedRead};
use genpip_genomics::read::ReadOrigin;
use genpip_genomics::{Base, DnaSeq, Genome};
use genpip_signal::{PoreModel, ReadSignal};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Leading file magic.
pub const MAGIC: &[u8; 8] = b"GENPIPSC";
/// Trailing index magic.
pub const TRAILER_MAGIC: &[u8; 8] = b"GSCINDEX";
/// The one supported container version.
pub const VERSION: u32 = 1;
/// Bytes in the fixed tail: table checksum, table position, read count,
/// trailer magic.
const TAIL_BYTES: u64 = 32;

/// Why a container could not be written, opened, or decoded.
///
/// Every corruption mode is a value, not a panic: flipping arbitrary bytes
/// in a valid file makes some `GscError` come back (see the fuzz test in
/// `tests/file_source.rs`).
#[derive(Debug)]
pub enum GscError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The leading or trailing magic bytes are wrong — not a GSC file, or
    /// one whose framing was destroyed.
    BadMagic {
        /// Which magic failed: `"header"` or `"trailer"`.
        section: &'static str,
    },
    /// The container version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ends (or a declared length runs) before `what` is complete.
    Truncated {
        /// The structure that could not be read in full.
        what: &'static str,
    },
    /// Stored and recomputed FNV-1a checksums disagree.
    ChecksumMismatch {
        /// The checksummed section: `"header"`, `"offset table"`, or
        /// `"record <k>"`.
        section: String,
    },
    /// An offset-table entry points outside the record region.
    OffsetOutOfRange {
        /// Index of the bad entry.
        index: usize,
        /// The out-of-range file offset it held.
        offset: u64,
    },
    /// Header and trailer disagree on the read count.
    CountMismatch {
        /// Count in the header.
        header: u64,
        /// Count in the trailer.
        trailer: u64,
    },
    /// A field holds a value no writer produces (bad pore k, non-finite
    /// chemistry, unknown origin tag, invalid UTF-8 name, …).
    Malformed {
        /// What was wrong.
        what: String,
    },
    /// A seek asked for a read index beyond the container's read count.
    SeekPastEnd {
        /// Requested read index.
        index: usize,
        /// Reads in the container.
        reads: usize,
    },
}

impl fmt::Display for GscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GscError::Io(e) => write!(f, "i/o error: {e}"),
            GscError::BadMagic { section } => write!(f, "bad {section} magic: not a GSC file"),
            GscError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported GSC version {found} (reader supports {VERSION})"
                )
            }
            GscError::Truncated { what } => write!(f, "truncated container: {what} incomplete"),
            GscError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section}")
            }
            GscError::OffsetOutOfRange { index, offset } => {
                write!(
                    f,
                    "offset-table entry {index} out of range (offset {offset})"
                )
            }
            GscError::CountMismatch { header, trailer } => {
                write!(
                    f,
                    "read-count mismatch: header says {header}, trailer says {trailer}"
                )
            }
            GscError::Malformed { what } => write!(f, "malformed container: {what}"),
            GscError::SeekPastEnd { index, reads } => {
                write!(f, "seek to read {index} past end of {reads}-read container")
            }
        }
    }
}

impl std::error::Error for GscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GscError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GscError {
    fn from(e: io::Error) -> GscError {
        GscError::Io(e)
    }
}

/// Incremental FNV-1a (64-bit) — the container's checksum.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Fnv::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Fnv::PRIME);
        }
    }

    fn digest(&self) -> u64 {
        self.0
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.digest()
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// 2-bit packs a sequence: base `i` occupies bits `(i % 4) * 2` of byte
/// `i / 4`, matching `DnaSeq`'s own layout.
fn put_seq(out: &mut Vec<u8>, seq: &DnaSeq) {
    put_u64(out, seq.len() as u64);
    let mut byte = 0u8;
    for (i, base) in seq.iter().enumerate() {
        byte |= base.code() << ((i & 3) * 2);
        if i & 3 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !seq.len().is_multiple_of(4) {
        out.push(byte);
    }
}

fn encode_record(out: &mut Vec<u8>, read: &SimulatedRead) {
    put_u32(out, read.id);
    put_f64(out, read.noise_sigma);
    match read.origin {
        ReadOrigin::Reference {
            start,
            len,
            reverse,
        } => {
            out.push(0);
            put_u64(out, start as u64);
            put_u64(out, len as u64);
            out.push(u8::from(reverse));
        }
        ReadOrigin::Contaminant => out.push(1),
    }
    put_seq(out, &read.signal.truth);
    put_u64(out, read.signal.samples.len() as u64);
    for &s in &read.signal.samples {
        put_f32(out, s);
    }
    for &b in &read.signal.base_index {
        put_u32(out, b);
    }
}

// ---------------------------------------------------------------------------
// Decoding helpers
// ---------------------------------------------------------------------------

/// A bounded cursor over bytes pulled from the file: every variable length
/// is checked against the file size before the allocation it would drive,
/// so corrupt length fields cannot balloon memory, and every short read
/// maps to [`GscError::Truncated`].
struct Take<'a, R: Read> {
    inner: &'a mut R,
    file_len: u64,
    /// Everything pulled since the last [`Take::reset`], for checksums.
    raw: Vec<u8>,
}

impl<'a, R: Read> Take<'a, R> {
    fn new(inner: &'a mut R, file_len: u64) -> Take<'a, R> {
        Take {
            inner,
            file_len,
            raw: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.raw.clear();
    }

    /// Pulls `n` bytes into `raw`, returning their range within it.
    fn span(&mut self, n: u64, what: &'static str) -> Result<std::ops::Range<usize>, GscError> {
        if n > self.file_len {
            return Err(GscError::Truncated { what });
        }
        let n = usize::try_from(n).map_err(|_| GscError::Truncated { what })?;
        let start = self.raw.len();
        self.raw.resize(start + n, 0);
        self.inner.read_exact(&mut self.raw[start..]).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                GscError::Truncated { what }
            } else {
                GscError::Io(e)
            }
        })?;
        Ok(start..start + n)
    }

    fn bytes(&mut self, n: u64, what: &'static str) -> Result<&[u8], GscError> {
        let span = self.span(n, what)?;
        Ok(&self.raw[span])
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, GscError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, GscError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, GscError> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f32(&mut self, what: &'static str) -> Result<f32, GscError> {
        Ok(f32::from_le_bytes(
            self.bytes(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, GscError> {
        Ok(f64::from_le_bytes(
            self.bytes(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed 2-bit packed sequence.
    fn seq(&mut self, what: &'static str) -> Result<DnaSeq, GscError> {
        let count = self.u64(what)?;
        let packed = count.div_ceil(4);
        let bytes_start = self.span(packed, what)?.start;
        let count = usize::try_from(count).map_err(|_| GscError::Truncated { what })?;
        let mut seq = DnaSeq::with_capacity(count);
        for i in 0..count {
            let code = self.raw[bytes_start + i / 4] >> ((i & 3) * 2);
            seq.push(Base::from_code(code));
        }
        Ok(seq)
    }
}

fn to_usize(v: u64, what: &'static str) -> Result<usize, GscError> {
    usize::try_from(v).map_err(|_| GscError::Malformed {
        what: format!("{what} does not fit in memory"),
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The run-wide context a container embeds: everything a
/// [`ReadSource`] must produce before its first read.
pub struct GscMeta<'a> {
    /// Chemistry the signals were synthesized with.
    pub pore_model: &'a PoreModel,
    /// Mean dwell time in samples per base.
    pub mean_dwell: f64,
    /// The mapping reference.
    pub reference: &'a Genome,
}

impl<'a> GscMeta<'a> {
    /// Borrows the context out of any source.
    pub fn from_source<S: ReadSource + ?Sized>(source: &'a S) -> GscMeta<'a> {
        GscMeta {
            pore_model: source.pore_model(),
            mean_dwell: source.mean_dwell(),
            reference: source.reference(),
        }
    }
}

/// What a finished [`GscWriter`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GscSummary {
    /// Reads packed.
    pub reads: u64,
    /// Bytes of header + records (excludes the index trailer).
    pub data_bytes: u64,
    /// Total file size.
    pub file_bytes: u64,
}

/// Streams [`SimulatedRead`]s into a GSC file: header up front, one record
/// per [`GscWriter::write_read`], offset table and trailer at
/// [`GscWriter::finish`] (which also back-patches the header's read count).
///
/// Dropping a writer without finishing leaves a file with no index trailer;
/// [`GscReader::open`] rejects it as truncated rather than serving a
/// half-written run.
pub struct GscWriter {
    file: BufWriter<File>,
    /// File offset of the header's read-count field (patched at finish).
    count_pos: u64,
    /// FNV state over the header bytes before the read count, so the final
    /// header checksum can be recomputed after patching.
    prefix_hash: Fnv,
    offsets: Vec<u64>,
    pos: u64,
    scratch: Vec<u8>,
}

impl GscWriter {
    /// Creates `path` and writes the container header (with a zero read
    /// count, patched on [`GscWriter::finish`]).
    ///
    /// # Errors
    ///
    /// Returns [`GscError::Io`] if the file cannot be created or written.
    pub fn create(path: impl AsRef<Path>, meta: &GscMeta<'_>) -> Result<GscWriter, GscError> {
        let file = File::create(path)?;
        let mut header = Vec::new();
        header.extend_from_slice(MAGIC);
        put_u32(&mut header, VERSION);
        put_u32(&mut header, 0); // flags, reserved
        put_u32(&mut header, meta.pore_model.k() as u32);
        put_f32(&mut header, meta.pore_model.event_std());
        put_f64(&mut header, meta.mean_dwell);
        for &level in meta.pore_model.levels() {
            put_f32(&mut header, level);
        }
        put_u32(&mut header, meta.reference.name().len() as u32);
        header.extend_from_slice(meta.reference.name().as_bytes());
        put_seq(&mut header, meta.reference.sequence());
        let count_pos = header.len() as u64;
        let mut prefix_hash = Fnv::new();
        prefix_hash.update(&header);
        put_u64(&mut header, 0); // read count placeholder
        let mut hash = Fnv::new();
        hash.update(&header);
        put_u64(&mut header, hash.digest());
        let mut file = BufWriter::new(file);
        file.write_all(&header)?;
        Ok(GscWriter {
            file,
            count_pos,
            prefix_hash,
            offsets: Vec::new(),
            pos: header.len() as u64,
            scratch: Vec::new(),
        })
    }

    /// Appends one read as a checksummed record.
    ///
    /// # Errors
    ///
    /// Returns [`GscError::Io`] on write failure.
    pub fn write_read(&mut self, read: &SimulatedRead) -> Result<(), GscError> {
        self.scratch.clear();
        encode_record(&mut self.scratch, read);
        let checksum = fnv(&self.scratch);
        self.offsets.push(self.pos);
        self.file.write_all(&self.scratch)?;
        self.file.write_all(&checksum.to_le_bytes())?;
        self.pos += self.scratch.len() as u64 + 8;
        Ok(())
    }

    /// Reads written so far.
    pub fn reads_written(&self) -> usize {
        self.offsets.len()
    }

    /// Bytes written so far (header + records).
    pub fn bytes_written(&self) -> u64 {
        self.pos
    }

    /// Writes the offset table and trailer, patches the header's read count
    /// and checksum, and flushes.
    ///
    /// # Errors
    ///
    /// Returns [`GscError::Io`] on write failure.
    pub fn finish(mut self) -> Result<GscSummary, GscError> {
        let reads = self.offsets.len() as u64;
        let table_pos = self.pos;
        let mut table = Vec::with_capacity(self.offsets.len() * 8);
        for &off in &self.offsets {
            put_u64(&mut table, off);
        }
        self.file.write_all(&table)?;
        self.file.write_all(&fnv(&table).to_le_bytes())?;
        self.file.write_all(&table_pos.to_le_bytes())?;
        self.file.write_all(&reads.to_le_bytes())?;
        self.file.write_all(TRAILER_MAGIC)?;
        let file_bytes = table_pos + table.len() as u64 + TAIL_BYTES;
        // Back-patch the header: read count, then the header checksum over
        // the prefix + patched count.
        self.file.seek(SeekFrom::Start(self.count_pos))?;
        let count_bytes = reads.to_le_bytes();
        self.prefix_hash.update(&count_bytes);
        self.file.write_all(&count_bytes)?;
        self.file
            .write_all(&self.prefix_hash.digest().to_le_bytes())?;
        self.file.flush()?;
        Ok(GscSummary {
            reads,
            data_bytes: table_pos,
            file_bytes,
        })
    }
}

/// Packs an entire source — context plus every remaining read — into a GSC
/// file at `path`.
///
/// # Errors
///
/// Returns [`GscError::Io`] on any write failure.
pub fn pack_source<S: ReadSource>(
    path: impl AsRef<Path>,
    source: &mut S,
) -> Result<GscSummary, GscError> {
    let model = source.pore_model().clone();
    let reference = source.reference().clone();
    let meta = GscMeta {
        pore_model: &model,
        mean_dwell: source.mean_dwell(),
        reference: &reference,
    };
    let mut writer = GscWriter::create(path, &meta)?;
    while let Some(read) = source.next_read() {
        writer.write_read(&read)?;
    }
    writer.finish()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A validated, seekable view of a GSC file.
///
/// Opening parses and checksums the header and the offset table; records
/// are decoded (and checksummed) lazily — sequentially via
/// [`GscReader::next_record`] or at random via [`GscReader::read_at`], both O(1)
/// in the container size thanks to the offset table.
pub struct GscReader {
    file: BufReader<File>,
    file_len: u64,
    header_len: u64,
    reference: Genome,
    model: PoreModel,
    mean_dwell: f64,
    offsets: Vec<u64>,
    /// End of the record region (start of the offset table).
    data_end: u64,
    /// Current byte position of `file`, tracked to skip redundant seeks on
    /// sequential reads.
    pos: u64,
    /// Index of the next read a sequential [`GscReader::next_record`] returns.
    next: usize,
}

impl fmt::Debug for GscReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GscReader(reads={}, reference={:?}, k={}, next={})",
            self.offsets.len(),
            self.reference.name(),
            self.model.k(),
            self.next
        )
    }
}

impl GscReader {
    /// Opens and validates a container: header magic, version, checksum,
    /// chemistry invariants, trailer magic, read-count cross-check, offset
    /// table checksum, and offset ranges.
    ///
    /// # Errors
    ///
    /// Any [`GscError`] variant, depending on what is wrong with the file.
    pub fn open(path: impl AsRef<Path>) -> Result<GscReader, GscError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);

        // --- Header ---
        let mut take = Take::new(&mut file, file_len);
        if take.bytes(8, "header magic")? != MAGIC {
            return Err(GscError::BadMagic { section: "header" });
        }
        let version = take.u32("version")?;
        if version != VERSION {
            return Err(GscError::UnsupportedVersion { found: version });
        }
        let _flags = take.u32("flags")?;
        let k = take.u32("pore k")?;
        if !(1..=6).contains(&k) {
            return Err(GscError::Malformed {
                what: format!("pore k {k} outside 1..=6"),
            });
        }
        let event_std = take.f32("event std")?;
        if !(event_std.is_finite() && event_std > 0.0) {
            return Err(GscError::Malformed {
                what: "event std not finite and positive".to_string(),
            });
        }
        let mean_dwell = take.f64("mean dwell")?;
        if !(mean_dwell.is_finite() && mean_dwell > 0.0) {
            return Err(GscError::Malformed {
                what: "mean dwell not finite and positive".to_string(),
            });
        }
        let states = 1u64 << (2 * k);
        let mut levels = Vec::with_capacity(states as usize);
        for _ in 0..states {
            let level = take.f32("level table")?;
            if !level.is_finite() {
                return Err(GscError::Malformed {
                    what: "non-finite pore level".to_string(),
                });
            }
            levels.push(level);
        }
        let name_len = take.u32("reference name")?;
        let name = String::from_utf8(take.bytes(u64::from(name_len), "reference name")?.to_vec())
            .map_err(|_| GscError::Malformed {
            what: "reference name not UTF-8".to_string(),
        })?;
        let ref_seq = take.seq("reference sequence")?;
        let read_count = take.u64("read count")?;
        let expected = fnv(&take.raw);
        let stored = take.u64("header checksum")?;
        if expected != stored {
            return Err(GscError::ChecksumMismatch {
                section: "header".to_string(),
            });
        }
        let header_len = take.raw.len() as u64;
        let model = PoreModel::from_parts(k as usize, levels, event_std);
        let reference = Genome::from_seq(name, ref_seq);

        // --- Trailer ---
        if file_len < header_len + TAIL_BYTES {
            return Err(GscError::Truncated {
                what: "index trailer",
            });
        }
        file.seek(SeekFrom::Start(file_len - TAIL_BYTES))?;
        let mut take = Take::new(&mut file, file_len);
        let table_checksum = take.u64("index trailer")?;
        let table_pos = take.u64("index trailer")?;
        let trailer_count = take.u64("index trailer")?;
        if take.bytes(8, "index trailer")? != TRAILER_MAGIC {
            return Err(GscError::BadMagic { section: "trailer" });
        }
        if trailer_count != read_count {
            return Err(GscError::CountMismatch {
                header: read_count,
                trailer: trailer_count,
            });
        }
        let table_bytes = read_count.checked_mul(8).ok_or(GscError::Truncated {
            what: "offset table",
        })?;
        let expected_len = table_pos
            .checked_add(table_bytes)
            .and_then(|v| v.checked_add(TAIL_BYTES));
        if table_pos < header_len || expected_len != Some(file_len) {
            return Err(GscError::Malformed {
                what: "offset table position inconsistent with file size".to_string(),
            });
        }

        // --- Offset table ---
        file.seek(SeekFrom::Start(table_pos))?;
        let mut take = Take::new(&mut file, file_len);
        let table_raw = take.bytes(table_bytes, "offset table")?;
        if fnv(table_raw) != table_checksum {
            return Err(GscError::ChecksumMismatch {
                section: "offset table".to_string(),
            });
        }
        let count = to_usize(read_count, "read count")?;
        let mut offsets = Vec::with_capacity(count);
        for i in 0..count {
            let off = u64::from_le_bytes(table_raw[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            if off < header_len || off >= table_pos {
                return Err(GscError::OffsetOutOfRange {
                    index: i,
                    offset: off,
                });
            }
            offsets.push(off);
        }

        Ok(GscReader {
            file,
            file_len,
            header_len,
            reference,
            model,
            mean_dwell,
            offsets,
            data_end: table_pos,
            pos: file_len, // position after reading the table; next() reseeks
            next: 0,
        })
    }

    /// [`GscReader::open`] followed by [`GscReader::seek_to`].
    ///
    /// # Errors
    ///
    /// Open errors, plus [`GscError::SeekPastEnd`] if `index` exceeds the
    /// read count.
    pub fn open_at(path: impl AsRef<Path>, index: usize) -> Result<GscReader, GscError> {
        let mut reader = GscReader::open(path)?;
        reader.seek_to(index)?;
        Ok(reader)
    }

    /// Positions the sequential cursor so the next read returned is read
    /// `index`. `index == read_count` is allowed and yields an exhausted
    /// reader (the empty suffix).
    ///
    /// # Errors
    ///
    /// [`GscError::SeekPastEnd`] if `index > read_count`.
    pub fn seek_to(&mut self, index: usize) -> Result<(), GscError> {
        if index > self.offsets.len() {
            return Err(GscError::SeekPastEnd {
                index,
                reads: self.offsets.len(),
            });
        }
        self.next = index;
        Ok(())
    }

    /// Reads in the container.
    pub fn read_count(&self) -> usize {
        self.offsets.len()
    }

    /// Index of the read the next sequential [`GscReader::next_record`] returns.
    pub fn next_index(&self) -> usize {
        self.next
    }

    /// The embedded mapping reference.
    pub fn reference(&self) -> &Genome {
        &self.reference
    }

    /// The embedded pore model.
    pub fn pore_model(&self) -> &PoreModel {
        &self.model
    }

    /// The embedded mean dwell (samples per base).
    pub fn mean_dwell(&self) -> f64 {
        self.mean_dwell
    }

    /// The validated per-read offset table (absolute file offsets).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Bytes of header (the first record starts here).
    pub fn header_bytes(&self) -> u64 {
        self.header_len
    }

    /// Bytes of header + records (the offset table starts here).
    pub fn data_bytes(&self) -> u64 {
        self.data_end
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_len
    }

    /// Decodes the next read in sequence, or `None` past the last one.
    ///
    /// # Errors
    ///
    /// [`GscError::ChecksumMismatch`] / [`GscError::Truncated`] /
    /// [`GscError::Malformed`] if the record is corrupt; the cursor does
    /// not advance past a corrupt record.
    pub fn next_record(&mut self) -> Result<Option<SimulatedRead>, GscError> {
        if self.next >= self.offsets.len() {
            return Ok(None);
        }
        let read = self.decode_at(self.next)?;
        self.next += 1;
        Ok(Some(read))
    }

    /// Decodes read `index` via the offset table (O(1) seek), leaving the
    /// sequential cursor at `index + 1`.
    ///
    /// # Errors
    ///
    /// [`GscError::SeekPastEnd`] for a bad index, otherwise as
    /// [`GscReader::next_record`].
    pub fn read_at(&mut self, index: usize) -> Result<SimulatedRead, GscError> {
        if index >= self.offsets.len() {
            return Err(GscError::SeekPastEnd {
                index,
                reads: self.offsets.len(),
            });
        }
        let read = self.decode_at(index)?;
        self.next = index + 1;
        Ok(read)
    }

    /// Decodes and checksums every record.
    ///
    /// # Errors
    ///
    /// The first decode error hit, identifying the corrupt record.
    pub fn verify(&mut self) -> Result<usize, GscError> {
        for i in 0..self.offsets.len() {
            let _ = self.decode_at(i)?;
        }
        self.next = self.offsets.len();
        Ok(self.offsets.len())
    }

    fn decode_at(&mut self, index: usize) -> Result<SimulatedRead, GscError> {
        let offset = self.offsets[index];
        if self.pos != offset {
            self.file.seek(SeekFrom::Start(offset))?;
            self.pos = offset;
        }
        let mut take = Take::new(&mut self.file, self.file_len);
        let result = decode_record(&mut take);
        let consumed = take.raw.len() as u64;
        match result {
            Ok((read, stored, hashed_len)) => {
                let recomputed = fnv(&take.raw[..hashed_len]);
                self.pos += consumed;
                if recomputed != stored {
                    return Err(GscError::ChecksumMismatch {
                        section: format!("record {index}"),
                    });
                }
                Ok(read)
            }
            Err(e) => {
                // The stream may be mid-record; force a reseek next time.
                self.pos = u64::MAX;
                Err(e)
            }
        }
    }
}

/// Decodes one record at the cursor, returning the read, the stored
/// checksum, and how many of the consumed bytes the checksum covers.
fn decode_record<R: Read>(take: &mut Take<'_, R>) -> Result<(SimulatedRead, u64, usize), GscError> {
    take.reset();
    let id = take.u32("record id")?;
    let noise_sigma = take.f64("record noise sigma")?;
    let origin = match take.u8("record origin")? {
        0 => {
            let start = to_usize(take.u64("record origin")?, "origin start")?;
            let len = to_usize(take.u64("record origin")?, "origin len")?;
            let reverse = match take.u8("record origin")? {
                0 => false,
                1 => true,
                other => {
                    return Err(GscError::Malformed {
                        what: format!("origin strand byte {other}"),
                    })
                }
            };
            ReadOrigin::Reference {
                start,
                len,
                reverse,
            }
        }
        1 => ReadOrigin::Contaminant,
        other => {
            return Err(GscError::Malformed {
                what: format!("origin tag {other}"),
            })
        }
    };
    let truth = take.seq("record truth")?;
    let sample_count = take.u64("record samples")?;
    let sample_bytes = sample_count.checked_mul(4).ok_or(GscError::Truncated {
        what: "record samples",
    })?;
    let n = to_usize(sample_count, "sample count")?;
    let samples_start = take.span(sample_bytes, "record samples")?.start;
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let at = samples_start + i * 4;
        samples.push(f32::from_le_bytes(
            take.raw[at..at + 4].try_into().expect("4 bytes"),
        ));
    }
    let index_start = take.span(sample_bytes, "record base index")?.start;
    let mut base_index = Vec::with_capacity(n);
    for i in 0..n {
        let at = index_start + i * 4;
        base_index.push(u32::from_le_bytes(
            take.raw[at..at + 4].try_into().expect("4 bytes"),
        ));
    }
    let hashed_len = take.raw.len();
    let stored = take.u64("record checksum")?;
    let read = SimulatedRead {
        id,
        signal: ReadSignal {
            samples,
            base_index,
            truth,
        },
        origin,
        noise_sigma,
    };
    Ok((read, stored, hashed_len))
}

// ---------------------------------------------------------------------------
// ReadSource adapter
// ---------------------------------------------------------------------------

/// A cloneable handle onto a [`GscReadSource`]'s sticky error slot: the
/// source itself is moved into the session, so callers keep this handle to
/// learn, after the run, whether the stream ended because the file was
/// exhausted or because a record failed to decode.
#[derive(Clone)]
pub struct GscStatus(Arc<Mutex<Option<GscError>>>);

impl GscStatus {
    /// `true` if no decode error has struck.
    pub fn is_ok(&self) -> bool {
        self.0.lock().expect("status poisoned").is_none()
    }

    /// The error message, if a decode error has struck.
    pub fn error(&self) -> Option<String> {
        self.0
            .lock()
            .expect("status poisoned")
            .as_ref()
            .map(|e| e.to_string())
    }

    /// Takes the typed error out of the slot, if any.
    pub fn take(&self) -> Option<GscError> {
        self.0.lock().expect("status poisoned").take()
    }
}

/// A [`ReadSource`] over a GSC file: the on-disk twin of
/// `StreamingSimulator`, bit-identical to the source the file was packed
/// from (same reads in the same order, with the same chemistry and
/// reference).
///
/// `ReadSource::next_read` cannot return errors, so a record that fails to
/// decode mid-stream ends the stream early (the source reports `None` from
/// then on) and parks the typed [`GscError`] in the source's
/// [`GscStatus`] — check it after the session to distinguish exhaustion
/// from corruption.
pub struct GscReadSource {
    reader: GscReader,
    status: GscStatus,
}

impl GscReadSource {
    /// Opens a container for streaming from read 0.
    ///
    /// # Errors
    ///
    /// Any [`GscError`] from [`GscReader::open`].
    pub fn open(path: impl AsRef<Path>) -> Result<GscReadSource, GscError> {
        Ok(GscReadSource::from_reader(GscReader::open(path)?))
    }

    /// Opens a container positioned at read `index` — the mid-session
    /// attach / resume entry point.
    ///
    /// # Errors
    ///
    /// Open errors, plus [`GscError::SeekPastEnd`] if `index` exceeds the
    /// read count.
    pub fn open_at(path: impl AsRef<Path>, index: usize) -> Result<GscReadSource, GscError> {
        Ok(GscReadSource::from_reader(GscReader::open_at(path, index)?))
    }

    /// Wraps an already-open (and possibly repositioned) reader.
    pub fn from_reader(reader: GscReader) -> GscReadSource {
        GscReadSource {
            reader,
            status: GscStatus(Arc::new(Mutex::new(None))),
        }
    }

    /// A handle onto the sticky decode-error slot, for inspection after
    /// the source has been moved into a session.
    pub fn status(&self) -> GscStatus {
        self.status.clone()
    }

    /// The underlying reader.
    pub fn reader(&self) -> &GscReader {
        &self.reader
    }
}

impl ReadSource for GscReadSource {
    fn reference(&self) -> &Genome {
        self.reader.reference()
    }

    fn pore_model(&self) -> &PoreModel {
        self.reader.pore_model()
    }

    fn mean_dwell(&self) -> f64 {
        self.reader.mean_dwell()
    }

    fn next_read(&mut self) -> Option<SimulatedRead> {
        if !self.status.is_ok() {
            return None;
        }
        match self.reader.next_record() {
            Ok(read) => read,
            Err(e) => {
                *self.status.0.lock().expect("status poisoned") = Some(e);
                None
            }
        }
    }

    fn reads_remaining(&self) -> Option<usize> {
        if !self.status.is_ok() {
            return Some(0);
        }
        Some(self.reader.read_count() - self.reader.next_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_datasets::{DatasetProfile, StreamingSimulator};
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("genpip-gsc-unit-{tag}-{}.gsc", std::process::id()));
        p
    }

    fn tiny() -> DatasetProfile {
        DatasetProfile::ecoli().scaled(0.02)
    }

    fn pack_tiny(tag: &str) -> PathBuf {
        let path = temp_path(tag);
        let mut source = StreamingSimulator::new(&tiny());
        pack_source(&path, &mut source).expect("pack");
        path
    }

    #[test]
    fn round_trips_bit_exactly() {
        let path = pack_tiny("roundtrip");
        let mut reader = GscReader::open(&path).expect("open");
        assert_eq!(
            reader.pore_model(),
            StreamingSimulator::new(&tiny()).pore_model()
        );
        assert_eq!(
            reader.reference(),
            StreamingSimulator::new(&tiny()).reference()
        );
        let mut expected = StreamingSimulator::new(&tiny());
        assert_eq!(
            reader.mean_dwell().to_bits(),
            expected.mean_dwell().to_bits()
        );
        let mut seen = 0;
        while let Some(read) = reader.next_record().expect("decode") {
            assert_eq!(Some(read), expected.next_read());
            seen += 1;
        }
        assert_eq!(expected.next_read(), None);
        assert_eq!(seen, reader.read_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_at_seeks_anywhere() {
        let path = pack_tiny("seek");
        let mut reader = GscReader::open(&path).expect("open");
        let n = reader.read_count();
        assert!(n >= 3, "need a few reads");
        let last = reader.read_at(n - 1).expect("decode last");
        let first = reader.read_at(0).expect("decode first");
        assert_eq!(first.id, 0);
        assert_eq!(last.id, (n - 1) as u32);
        // Sequential cursor follows the last random read.
        assert_eq!(reader.next_index(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_at_streams_the_suffix() {
        let path = pack_tiny("openat");
        let n = GscReader::open(&path).expect("open").read_count();
        let mut source = GscReadSource::open_at(&path, n - 2).expect("open_at");
        assert_eq!(source.reads_remaining(), Some(2));
        assert_eq!(source.next_read().expect("read").id, (n - 2) as u32);
        assert_eq!(source.next_read().expect("read").id, (n - 1) as u32);
        assert_eq!(source.next_read(), None);
        assert!(source.status().is_ok());
        // The empty suffix is a valid position…
        assert!(GscReader::open_at(&path, n).is_ok());
        // …one past it is not.
        assert!(matches!(
            GscReader::open_at(&path, n + 1),
            Err(GscError::SeekPastEnd { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let path = pack_tiny("trunc");
        let bytes = std::fs::read(&path).expect("read");
        for keep in [0usize, 4, 20, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..keep]).expect("write");
            let err = GscReader::open(&path).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    GscError::Truncated { .. }
                        | GscError::BadMagic { .. }
                        | GscError::ChecksumMismatch { .. }
                        | GscError::Malformed { .. }
                        | GscError::CountMismatch { .. }
                        | GscError::OffsetOutOfRange { .. }
                ),
                "unexpected error for keep={keep}: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_writer_leaves_an_unopenable_file() {
        let path = temp_path("unfinished");
        let profile = tiny();
        let mut source = StreamingSimulator::new(&profile);
        let model = source.pore_model().clone();
        let reference = source.reference().clone();
        let meta = GscMeta {
            pore_model: &model,
            mean_dwell: source.mean_dwell(),
            reference: &reference,
        };
        let mut writer = GscWriter::create(&path, &meta).expect("create");
        let read = source.next_read().expect("read");
        writer.write_read(&read).expect("write");
        drop(writer); // no finish(): no trailer, zero read count
        assert!(GscReader::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_is_a_checksum_mismatch() {
        let path = pack_tiny("flip");
        let mut bytes = std::fs::read(&path).expect("read");
        let reader = GscReader::open(&path).expect("open");
        // Flip one byte in the middle of record 0's payload.
        let at = (reader.offsets()[0] + 20) as usize;
        drop(reader);
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let mut reader = GscReader::open(&path).expect("header still fine");
        let err = reader.verify().expect_err("corrupt record");
        assert!(
            matches!(&err, GscError::ChecksumMismatch { section } if section.contains("record"))
                || matches!(err, GscError::Malformed { .. } | GscError::Truncated { .. }),
            "unexpected: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn source_parks_decode_errors_in_status() {
        let path = pack_tiny("status");
        let mut bytes = std::fs::read(&path).expect("read");
        let reader = GscReader::open(&path).expect("open");
        let n = reader.read_count();
        let at = (reader.offsets()[n - 1] + 16) as usize;
        drop(reader);
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        let mut source = GscReadSource::open(&path).expect("open");
        let status = source.status();
        let mut streamed = 0;
        while source.next_read().is_some() {
            streamed += 1;
        }
        assert_eq!(streamed, n - 1, "stream stops at the corrupt record");
        assert!(!status.is_ok());
        assert!(status.error().expect("error").contains("record"));
        assert!(matches!(
            status.take(),
            Some(GscError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
