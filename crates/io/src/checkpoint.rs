//! Session checkpoint files: the on-disk cut a streaming run leaves behind
//! so a killed run can restart and produce a byte-identical output suffix.
//!
//! A checkpoint records, per source, how many reads have been **emitted**
//! (results delivered in order through the sink — the resume offset for a
//! seekable source) and how many of those were quarantined faults, plus the
//! session-wide retry counter and, for runs writing FASTQ, the flushed byte
//! offset of each output file. Emission is in-order per source, so the
//! emitted count is exactly the prefix of the source that is fully
//! persisted: resuming means reopening each source at its offset (e.g.
//! [`crate::GscReadSource::open_at`]), truncating each output file to its
//! recorded byte offset, and streaming on.
//!
//! The format is a small, versioned, line-oriented text file (one artifact
//! a human can read in an editor when a run dies), written atomically
//! (temp file + rename) so a crash mid-checkpoint never destroys the
//! previous good checkpoint.

use std::fmt;
use std::io::{self, Write};
use std::path::Path;

/// First line of every checkpoint file.
const HEADER: &str = "genpip-checkpoint v1";

/// Why a checkpoint file could not be read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the text, with a line number (1-based).
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// One source's resume state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMark {
    /// The source's registered name.
    pub name: String,
    /// Reads emitted in order so far — the read index to resume the source
    /// at.
    pub emitted: u64,
    /// …of which quarantined faults.
    pub failed: u64,
}

/// One output file's resume state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqMark {
    /// The source whose records the file holds.
    pub source: String,
    /// Flushed size of the file at the checkpoint; resume truncates to
    /// this before appending.
    pub bytes: u64,
}

/// A parsed (or to-be-written) checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointFile {
    /// Per-source resume state, in registration order.
    pub sources: Vec<SourceMark>,
    /// Per-output-file resume state (absent for runs not writing FASTQ).
    pub fastq: Vec<FastqMark>,
    /// Fault-retry attempts consumed session-wide at the checkpoint.
    pub retried: u64,
    /// `true` if this checkpoint marks a completed (fully drained) run.
    pub complete: bool,
}

impl CheckpointFile {
    /// The source mark registered under `name`, if any.
    pub fn source(&self, name: &str) -> Option<&SourceMark> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// The output mark for source `name`, if any.
    pub fn fastq_for(&self, name: &str) -> Option<&FastqMark> {
        self.fastq.iter().find(|f| f.source == name)
    }

    /// Renders the file's text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for s in &self.sources {
            out.push_str(&format!("source {} {} {}\n", s.emitted, s.failed, s.name));
        }
        for f in &self.fastq {
            out.push_str(&format!("fastq {} {}\n", f.bytes, f.source));
        }
        out.push_str(&format!("retried {}\n", self.retried));
        out.push_str(&format!("complete {}\n", if self.complete { 1 } else { 0 }));
        out
    }

    /// Parses the text form.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] with the offending line for any
    /// structural problem.
    pub fn parse(text: &str) -> Result<CheckpointFile, CheckpointError> {
        let malformed = |line: usize, reason: &str| CheckpointError::Malformed {
            line,
            reason: reason.to_string(),
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == HEADER => {}
            Some((_, first)) => {
                return Err(malformed(
                    1,
                    &format!("expected {HEADER:?}, found {first:?}"),
                ))
            }
            None => return Err(malformed(1, "empty checkpoint")),
        }
        let mut file = CheckpointFile::default();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
            match keyword {
                "source" => {
                    let mut parts = rest.splitn(3, ' ');
                    let emitted = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| malformed(lineno, "source line needs a count"))?;
                    let failed = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| malformed(lineno, "source line needs a fault count"))?;
                    let name = parts
                        .next()
                        .filter(|n| !n.is_empty())
                        .ok_or_else(|| malformed(lineno, "source line needs a name"))?;
                    if failed > emitted {
                        return Err(malformed(lineno, "more faults than emitted reads"));
                    }
                    file.sources.push(SourceMark {
                        name: name.to_string(),
                        emitted,
                        failed,
                    });
                }
                "fastq" => {
                    let mut parts = rest.splitn(2, ' ');
                    let bytes = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| malformed(lineno, "fastq line needs a byte offset"))?;
                    let source = parts
                        .next()
                        .filter(|n| !n.is_empty())
                        .ok_or_else(|| malformed(lineno, "fastq line needs a source name"))?;
                    file.fastq.push(FastqMark {
                        source: source.to_string(),
                        bytes,
                    });
                }
                "retried" => {
                    file.retried = rest
                        .parse::<u64>()
                        .map_err(|_| malformed(lineno, "retried needs a count"))?;
                }
                "complete" => {
                    file.complete = match rest {
                        "0" => false,
                        "1" => true,
                        _ => return Err(malformed(lineno, "complete must be 0 or 1")),
                    };
                }
                other => {
                    return Err(malformed(lineno, &format!("unknown keyword {other:?}")));
                }
            }
        }
        Ok(file)
    }

    /// Writes the checkpoint atomically: render to `<path>.tmp`, flush, then
    /// rename over `path` — a crash mid-write never clobbers the previous
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Any I/O error from the write or rename.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Malformed`] if it does not parse.
    pub fn load(path: impl AsRef<Path>) -> Result<CheckpointFile, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        CheckpointFile::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointFile {
        CheckpointFile {
            sources: vec![
                SourceMark {
                    name: "flowcell-a".to_string(),
                    emitted: 41,
                    failed: 2,
                },
                SourceMark {
                    name: "b with spaces".to_string(),
                    emitted: 7,
                    failed: 0,
                },
            ],
            fastq: vec![FastqMark {
                source: "flowcell-a".to_string(),
                bytes: 12345,
            }],
            retried: 3,
            complete: false,
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let cp = sample();
        let parsed = CheckpointFile::parse(&cp.render()).expect("parse");
        assert_eq!(parsed, cp);
    }

    #[test]
    fn lookup_helpers() {
        let cp = sample();
        assert_eq!(cp.source("flowcell-a").expect("mark").emitted, 41);
        assert_eq!(cp.source("b with spaces").expect("mark").emitted, 7);
        assert!(cp.source("nope").is_none());
        assert_eq!(cp.fastq_for("flowcell-a").expect("mark").bytes, 12345);
        assert!(cp.fastq_for("b with spaces").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(CheckpointFile::parse("").is_err());
        assert!(CheckpointFile::parse("not a checkpoint\n").is_err());
        let cp = CheckpointFile::parse("genpip-checkpoint v1\nbogus line\n");
        assert!(cp.is_err());
        let cp = CheckpointFile::parse("genpip-checkpoint v1\nsource x 1 n\n");
        assert!(cp.is_err(), "non-numeric count must fail");
        let cp = CheckpointFile::parse("genpip-checkpoint v1\nsource 1 2 n\n");
        assert!(cp.is_err(), "failed > emitted must fail");
        let cp = CheckpointFile::parse("genpip-checkpoint v1\ncomplete 2\n");
        assert!(cp.is_err());
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let mut path = std::env::temp_dir();
        path.push(format!("genpip-ckpt-unit-{}.txt", std::process::id()));
        let mut cp = sample();
        cp.write_atomic(&path).expect("write");
        assert_eq!(CheckpointFile::load(&path).expect("load"), cp);
        cp.sources[0].emitted = 99;
        cp.complete = true;
        cp.write_atomic(&path).expect("rewrite");
        assert_eq!(CheckpointFile::load(&path).expect("load"), cp);
        std::fs::remove_file(&path).ok();
    }
}
