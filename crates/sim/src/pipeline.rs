//! Multi-stage, multi-server pipeline scheduling.
//!
//! Models GenPIP's chunk-based pipeline (and the CP-augmented CPU/GPU
//! systems): a sequence of stages, each with a number of identical servers,
//! through which jobs (chunks) flow in FIFO order. Two dependency kinds are
//! honoured:
//!
//! * **dataflow** — a job enters stage `s` only after finishing stage
//!   `s − 1`;
//! * **in-read sequential** — on stages marked
//!   [`StageSpec::sequential_within_read`], jobs of the same read execute in
//!   order (basecalling needs the previous chunk's carry state; incremental
//!   chaining extends the previous chunk's DP).
//!
//! The scheduler computes completion times with the classic pipeline
//! recurrence `start = max(data_ready, same_read_prev, server_free)` and
//! reports makespan plus per-stage busy time, from which the speedup figures
//! derive.

use crate::time::SimTime;

/// One pipeline stage: a name (for reports) and a server count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    name: String,
    servers: usize,
    sequential_within_read: bool,
}

impl StageSpec {
    /// Creates a stage with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is 0.
    pub fn new(name: impl Into<String>, servers: usize) -> StageSpec {
        assert!(servers > 0, "a stage needs at least one server");
        StageSpec {
            name: name.into(),
            servers,
            sequential_within_read: false,
        }
    }

    /// Marks the stage as in-read sequential (see module docs).
    pub fn sequential_within_read(mut self) -> StageSpec {
        self.sequential_within_read = true;
        self
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Server count.
    pub fn servers(&self) -> usize {
        self.servers
    }
}

/// One job (a chunk, or a whole read for read-granularity systems) with its
/// per-stage service times.
///
/// A zero service time means the job skips that stage instantly (still
/// honouring dependencies) — used e.g. for chunks that never reach chaining
/// because early rejection stopped the read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Read this job belongs to.
    pub read: u32,
    /// Sequence number within the read (0-based chunk index).
    pub seq_in_read: u32,
    /// Service time at each stage; length must equal the stage count.
    pub service: Vec<SimTime>,
    /// Earliest time the job may start stage 0 (e.g. sequencer delivery
    /// time); defaults to zero.
    pub release: SimTime,
}

impl Job {
    /// Creates a job released at time zero.
    pub fn new(read: u32, seq_in_read: u32, service: Vec<SimTime>) -> Job {
        Job {
            read,
            seq_in_read,
            service,
            release: SimTime::ZERO,
        }
    }

    /// Sets the release time.
    pub fn released_at(mut self, release: SimTime) -> Job {
        self.release = release;
        self
    }
}

/// One scheduled execution interval: job × stage × server with its start
/// and finish times. Produced by [`PipelineSim::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Index of the job in the input list.
    pub job: usize,
    /// Read the job belongs to.
    pub read: u32,
    /// Stage index.
    pub stage: usize,
    /// Server within the stage.
    pub server: usize,
    /// Start time.
    pub start: SimTime,
    /// Finish time.
    pub finish: SimTime,
}

/// One read's latency through the pipeline: from its first job's first
/// start to its last job's completion. This is the *per-read service view*
/// the throughput numbers hide — GenPIP's chunk-granular pipelining shows
/// up here as short reads completing long before a whole-batch makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLatency {
    /// The read id.
    pub read: u32,
    /// When the read's first chunk started stage 0.
    pub first_start: SimTime,
    /// When the read's last job left the last stage.
    pub completion: SimTime,
}

impl ReadLatency {
    /// First-chunk→completion span.
    pub fn span(&self) -> SimTime {
        self.completion - self.first_start
    }
}

/// Scheduling results.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Completion time of the last job.
    pub makespan: SimTime,
    /// Per-stage total busy time (summed across servers).
    pub stage_busy: Vec<SimTime>,
    /// Per-stage utilization in `[0, 1]`: busy time / (makespan × servers).
    pub stage_utilization: Vec<f64>,
    /// Completion time of every job (same order as the input).
    pub job_completion: Vec<SimTime>,
    /// Per-read first-chunk-start → last-job-completion latency, in order
    /// of each read's first appearance in the job list.
    pub read_latency: Vec<ReadLatency>,
    /// Execution trace (non-zero-service intervals only); populated by
    /// [`PipelineSim::run_traced`], empty from [`PipelineSim::run`].
    pub trace: Vec<TraceEntry>,
}

impl PipelineReport {
    /// Nearest-rank percentile of the per-read latency spans (`q` in
    /// `[0, 1]`); [`SimTime::ZERO`] when no reads ran.
    pub fn read_latency_percentile(&self, q: f64) -> SimTime {
        if self.read_latency.is_empty() {
            return SimTime::ZERO;
        }
        let mut spans: Vec<SimTime> = self.read_latency.iter().map(ReadLatency::span).collect();
        spans.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * spans.len() as f64).ceil() as usize).max(1) - 1;
        spans[rank.min(spans.len() - 1)]
    }
}

/// The pipeline scheduler. Create once per experiment; [`PipelineSim::run`]
/// is pure with respect to the job list.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    stages: Vec<StageSpec>,
}

impl PipelineSim {
    /// Creates a scheduler over the given stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<StageSpec>) -> PipelineSim {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        PipelineSim { stages }
    }

    /// The stage specs.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Schedules `jobs` (in the given FIFO order) and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if any job's `service` length differs from the stage count.
    pub fn run(&mut self, jobs: &[Job]) -> PipelineReport {
        self.run_inner(jobs, false)
    }

    /// Like [`PipelineSim::run`], additionally recording the execution trace
    /// (every non-zero service interval with its job, stage, server and
    /// times) for timeline inspection and Gantt rendering.
    pub fn run_traced(&mut self, jobs: &[Job]) -> PipelineReport {
        self.run_inner(jobs, true)
    }

    fn run_inner(&mut self, jobs: &[Job], traced: bool) -> PipelineReport {
        let n_stages = self.stages.len();
        for job in jobs {
            assert_eq!(
                job.service.len(),
                n_stages,
                "job ({}, {}) has {} service times for {} stages",
                job.read,
                job.seq_in_read,
                job.service.len(),
                n_stages
            );
        }

        // Per-stage server free times. Server choice is work-conserving
        // best-fit: a job whose start is delayed by dependencies takes the
        // server with the *latest* free time not exceeding its earliest
        // start, leaving earlier-free servers for other jobs (a plain
        // min-heap would let waiting jobs block idle servers).
        let mut servers: Vec<Vec<SimTime>> = self
            .stages
            .iter()
            .map(|s| vec![SimTime::ZERO; s.servers])
            .collect();
        // Per-stage: completion time of the previous job of each read
        // (only needed for sequential stages; small maps are fine).
        let mut read_prev: Vec<std::collections::HashMap<u32, SimTime>> =
            vec![std::collections::HashMap::new(); n_stages];

        let mut stage_busy = vec![SimTime::ZERO; n_stages];
        let mut job_completion = Vec::with_capacity(jobs.len());
        let mut makespan = SimTime::ZERO;
        let mut trace = Vec::new();
        // Per-read latency bookkeeping, in first-appearance order.
        let mut read_order: Vec<u32> = Vec::new();
        let mut read_span: std::collections::HashMap<u32, (SimTime, SimTime)> =
            std::collections::HashMap::new();

        for (job_index, job) in jobs.iter().enumerate() {
            let mut ready = job.release;
            for (s, stage) in self.stages.iter().enumerate() {
                let mut earliest = ready;
                if stage.sequential_within_read {
                    if let Some(&prev) = read_prev[s].get(&job.read) {
                        earliest = earliest.max(prev);
                    }
                }
                // Best fit: latest free time ≤ earliest, else min free time.
                let pool = &mut servers[s];
                let mut chosen = 0usize;
                let mut chosen_fits = pool[0] <= earliest;
                for (i, &free) in pool.iter().enumerate().skip(1) {
                    let fits = free <= earliest;
                    let better = match (fits, chosen_fits) {
                        (true, true) => free > pool[chosen],
                        (true, false) => true,
                        (false, true) => false,
                        (false, false) => free < pool[chosen],
                    };
                    if better {
                        chosen = i;
                        chosen_fits = fits;
                    }
                }
                let start = earliest.max(pool[chosen]);
                let finish = start + job.service[s];
                if s == 0 {
                    match read_span.get_mut(&job.read) {
                        Some(span) => span.0 = span.0.min(start),
                        None => {
                            read_order.push(job.read);
                            read_span.insert(job.read, (start, finish));
                        }
                    }
                }
                pool[chosen] = finish;
                stage_busy[s] += job.service[s];
                if stage.sequential_within_read {
                    read_prev[s].insert(job.read, finish);
                }
                if traced && job.service[s] > SimTime::ZERO {
                    trace.push(TraceEntry {
                        job: job_index,
                        read: job.read,
                        stage: s,
                        server: chosen,
                        start,
                        finish,
                    });
                }
                ready = finish;
            }
            job_completion.push(ready);
            makespan = makespan.max(ready);
            let span = read_span.get_mut(&job.read).expect("stage 0 ran");
            span.1 = span.1.max(ready);
        }
        let read_latency = read_order
            .iter()
            .map(|read| {
                let (first_start, completion) = read_span[read];
                ReadLatency {
                    read: *read,
                    first_start,
                    completion,
                }
            })
            .collect();

        let stage_utilization = self
            .stages
            .iter()
            .zip(&stage_busy)
            .map(|(spec, &busy)| {
                if makespan == SimTime::ZERO {
                    0.0
                } else {
                    busy.as_secs() / (makespan.as_secs() * spec.servers as f64)
                }
            })
            .collect();

        PipelineReport {
            makespan,
            stage_busy,
            stage_utilization,
            job_completion,
            read_latency,
            trace,
        }
    }
}

/// Renders a trace as an ASCII Gantt chart, one row per (stage, server) that
/// executed work, `width` characters across the makespan.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn render_gantt(report: &PipelineReport, stage_names: &[&str], width: usize) -> String {
    assert!(width > 0, "gantt width must be positive");
    if report.trace.is_empty() || report.makespan == SimTime::ZERO {
        return String::from("(empty trace)\n");
    }
    use std::collections::BTreeMap;
    let span = report.makespan.as_secs();
    let mut rows: BTreeMap<(usize, usize), Vec<char>> = BTreeMap::new();
    for e in &report.trace {
        let row = rows
            .entry((e.stage, e.server))
            .or_insert_with(|| vec!['.'; width]);
        let a = ((e.start.as_secs() / span) * width as f64) as usize;
        let b = (((e.finish.as_secs() / span) * width as f64).ceil() as usize).min(width);
        let glyph = char::from_digit(e.read % 10, 10).unwrap_or('#');
        for c in row.iter_mut().take(b.max(a + 1)).skip(a) {
            *c = glyph;
        }
    }
    let mut out = String::new();
    for ((stage, server), row) in rows {
        let name = stage_names.get(stage).copied().unwrap_or("?");
        out.push_str(&format!("{name:<10}[{server:>3}] "));
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn single_stage_single_server_serializes() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", 1)]);
        let jobs: Vec<Job> = (0..5).map(|i| Job::new(0, i, vec![t(10.0)])).collect();
        let report = sim.run(&jobs);
        assert_eq!(report.makespan, t(50.0));
        assert_eq!(report.stage_busy[0], t(50.0));
        assert!((report.stage_utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_servers_halve_the_makespan() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", 2)]);
        let jobs: Vec<Job> = (0..6).map(|i| Job::new(i, 0, vec![t(10.0)])).collect();
        let report = sim.run(&jobs);
        assert_eq!(report.makespan, t(30.0));
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // Classic 2-stage pipeline: makespan = fill + n * bottleneck.
        let mut sim = PipelineSim::new(vec![StageSpec::new("a", 1), StageSpec::new("b", 1)]);
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::new(i, 0, vec![t(10.0), t(4.0)]))
            .collect();
        let report = sim.run(&jobs);
        // Stage a serializes: 100 ns; last job then spends 4 ns in b.
        assert_eq!(report.makespan, t(104.0));
        // Sequential (non-pipelined) execution would be 140 ns.
        let sequential: SimTime = jobs.iter().flat_map(|j| j.service.iter().copied()).sum();
        assert!(report.makespan < sequential);
    }

    #[test]
    fn sequential_within_read_is_enforced() {
        // Two servers, but both jobs belong to one read on a sequential
        // stage: they must not run in parallel.
        let mut sim = PipelineSim::new(vec![StageSpec::new("bc", 2).sequential_within_read()]);
        let jobs = vec![Job::new(7, 0, vec![t(10.0)]), Job::new(7, 1, vec![t(10.0)])];
        let report = sim.run(&jobs);
        assert_eq!(report.makespan, t(20.0));

        // Different reads do run in parallel.
        let jobs = vec![Job::new(1, 0, vec![t(10.0)]), Job::new(2, 0, vec![t(10.0)])];
        assert_eq!(sim.run(&jobs).makespan, t(10.0));
    }

    #[test]
    fn release_times_delay_start() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", 1)]);
        let jobs = vec![Job::new(0, 0, vec![t(5.0)]).released_at(t(100.0))];
        let report = sim.run(&jobs);
        assert_eq!(report.makespan, t(105.0));
        // Utilization accounts for the idle head.
        assert!(report.stage_utilization[0] < 0.1);
    }

    #[test]
    fn zero_service_passes_through() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("a", 1), StageSpec::new("b", 1)]);
        let jobs = vec![Job::new(0, 0, vec![t(10.0), SimTime::ZERO])];
        let report = sim.run(&jobs);
        assert_eq!(report.makespan, t(10.0));
        assert_eq!(report.stage_busy[1], SimTime::ZERO);
    }

    #[test]
    fn job_completion_is_per_job_and_monotone_per_read() {
        let mut sim = PipelineSim::new(vec![
            StageSpec::new("a", 1).sequential_within_read(),
            StageSpec::new("b", 4),
        ]);
        let jobs: Vec<Job> = (0..8)
            .map(|i| Job::new(i / 4, i % 4, vec![t(7.0), t(13.0)]))
            .collect();
        let report = sim.run(&jobs);
        assert_eq!(report.job_completion.len(), 8);
        for r in 0..2 {
            let completions: Vec<SimTime> = (0..4)
                .map(|c| report.job_completion[(r * 4 + c) as usize])
                .collect();
            assert!(completions.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn trace_records_intervals_and_gantt_renders() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("a", 1), StageSpec::new("b", 2)]);
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job::new(i, 0, vec![t(10.0), t(5.0)]))
            .collect();
        let report = sim.run_traced(&jobs);
        // One entry per non-zero service: 4 jobs × 2 stages.
        assert_eq!(report.trace.len(), 8);
        for e in &report.trace {
            assert!(e.start < e.finish);
            assert!(e.finish <= report.makespan);
        }
        // Stage-a entries never overlap (single server).
        let mut a_entries: Vec<_> = report.trace.iter().filter(|e| e.stage == 0).collect();
        a_entries.sort_by_key(|e| e.start);
        for w in a_entries.windows(2) {
            assert!(w[0].finish <= w[1].start);
        }
        let gantt = render_gantt(&report, &["a", "b"], 40);
        assert!(gantt.contains("a         [  0]"));
        assert!(gantt.lines().count() >= 2);

        // Untraced run has an empty trace but identical timing.
        let untraced = sim.run(&jobs);
        assert!(untraced.trace.is_empty());
        assert_eq!(untraced.makespan, report.makespan);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("a", 1)]);
        let report = sim.run_traced(&[]);
        assert_eq!(render_gantt(&report, &["a"], 10), "(empty trace)\n");
    }

    #[test]
    fn empty_job_list() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", 3)]);
        let report = sim.run(&[]);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert_eq!(report.stage_utilization[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "service times")]
    fn wrong_service_length_panics() {
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", 1)]);
        let _ = sim.run(&[Job::new(0, 0, vec![])]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = StageSpec::new("s", 0);
    }

    #[test]
    fn read_latency_spans_first_start_to_completion() {
        // One single-server stage, FIFO: read 0's two chunks straddle
        // read 1's single chunk, so read 0 is resident 0→30 while read 1
        // flows through in 10.
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", 1).sequential_within_read()]);
        let t = |ns: f64| SimTime::from_ns(ns);
        let jobs = vec![
            Job::new(0, 0, vec![t(10.0)]),
            Job::new(1, 0, vec![t(10.0)]),
            Job::new(0, 1, vec![t(10.0)]),
        ];
        let report = sim.run(&jobs);
        assert_eq!(report.read_latency.len(), 2);
        assert_eq!(report.read_latency[0].read, 0);
        assert_eq!(report.read_latency[0].first_start, SimTime::ZERO);
        assert_eq!(report.read_latency[0].completion, t(30.0));
        assert_eq!(report.read_latency[0].span(), t(30.0));
        assert_eq!(report.read_latency[1].span(), t(10.0));
        assert_eq!(report.read_latency_percentile(0.5), t(10.0));
        assert_eq!(report.read_latency_percentile(0.99), t(30.0));
        assert_eq!(report.read_latency_percentile(1.0), t(30.0));
        // An empty run has no latency to report.
        assert_eq!(sim.run(&[]).read_latency_percentile(0.99), SimTime::ZERO);
    }
}
