//! Per-component energy accounting.

use std::collections::BTreeMap;
use std::fmt;

/// Accumulates energy (joules) per named component.
///
/// A `BTreeMap` keeps report ordering deterministic.
///
/// # Example
///
/// ```
/// use genpip_sim::EnergyMeter;
///
/// let mut meter = EnergyMeter::new();
/// meter.add("basecaller", 1.5e-3);
/// meter.add("seeding", 0.5e-3);
/// meter.add("basecaller", 0.5e-3);
/// assert_eq!(meter.component("basecaller"), 2e-3);
/// assert_eq!(meter.total(), 2.5e-3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    joules: BTreeMap<String, f64>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Adds `joules` to `component`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite energy.
    pub fn add(&mut self, component: &str, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy must be finite and non-negative, got {joules}"
        );
        *self.joules.entry(component.to_string()).or_insert(0.0) += joules;
    }

    /// Energy recorded for one component (0 if never seen).
    pub fn component(&self, component: &str) -> f64 {
        self.joules.get(component).copied().unwrap_or(0.0)
    }

    /// Total energy across components.
    pub fn total(&self) -> f64 {
        self.joules.values().sum()
    }

    /// Iterates `(component, joules)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.joules.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

/// One `component: energy` line per entry plus a total.
impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k}: {v:.3e} J")?;
        }
        write!(f, "total: {:.3e} J", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_component() {
        let mut m = EnergyMeter::new();
        m.add("a", 1.0);
        m.add("b", 2.0);
        m.add("a", 3.0);
        assert_eq!(m.component("a"), 4.0);
        assert_eq!(m.component("b"), 2.0);
        assert_eq!(m.component("missing"), 0.0);
        assert_eq!(m.total(), 6.0);
    }

    #[test]
    fn merge_adds_components() {
        let mut a = EnergyMeter::new();
        a.add("x", 1.0);
        let mut b = EnergyMeter::new();
        b.add("x", 2.0);
        b.add("y", 5.0);
        a.merge(&b);
        assert_eq!(a.component("x"), 3.0);
        assert_eq!(a.component("y"), 5.0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = EnergyMeter::new();
        m.add("zeta", 1.0);
        m.add("alpha", 1.0);
        let names: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_mentions_total() {
        let mut m = EnergyMeter::new();
        m.add("a", 0.5);
        let s = m.to_string();
        assert!(s.contains("total"));
        assert!(s.contains("a:"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        EnergyMeter::new().add("a", -1.0);
    }
}
