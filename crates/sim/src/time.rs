//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, stored in integer picoseconds.
///
/// Integer time keeps the scheduler exactly deterministic and associative;
/// picosecond resolution comfortably represents both sub-nanosecond CAM
/// searches and hour-long CPU baselines (`u64` picoseconds ≈ 213 days).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from picoseconds.
    pub const fn from_ps(ps: u64) -> SimTime {
        SimTime(ps)
    }

    /// Builds from (fractional) nanoseconds, rounding to picoseconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_ns(ns: f64) -> SimTime {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((ns * 1e3).round() as u64)
    }

    /// Builds from microseconds.
    pub fn from_us(us: f64) -> SimTime {
        SimTime::from_ns(us * 1e3)
    }

    /// Builds from milliseconds.
    pub fn from_ms(ms: f64) -> SimTime {
        SimTime::from_ns(ms * 1e6)
    }

    /// Builds from seconds.
    pub fn from_secs(s: f64) -> SimTime {
        SimTime::from_ns(s * 1e9)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics on underflow (subtracting a later time from an earlier one).
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("simulated time overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", self.as_secs())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} µs", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", self.as_ns())
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(1.0).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1.0), SimTime::from_ns(1_000.0));
        assert_eq!(SimTime::from_ms(1.0), SimTime::from_us(1_000.0));
        assert_eq!(SimTime::from_secs(1.0), SimTime::from_ms(1_000.0));
        assert!((SimTime::from_secs(2.5).as_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10.0);
        let b = SimTime::from_ns(4.0);
        assert_eq!(a + b, SimTime::from_ns(14.0));
        assert_eq!(a - b, SimTime::from_ns(6.0));
        assert_eq!(a * 3, SimTime::from_ns(30.0));
        assert_eq!(a / 2, SimTime::from_ns(5.0));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total, SimTime::from_ns(18.0));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_ns(1.0) - SimTime::from_ns(2.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500 ps");
        assert_eq!(SimTime::from_ns(1.5).to_string(), "1.500 ns");
        assert_eq!(SimTime::from_us(2.0).to_string(), "2.000 µs");
        assert_eq!(SimTime::from_ms(3.0).to_string(), "3.000 ms");
        assert_eq!(SimTime::from_secs(4.0).to_string(), "4.000 s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1.0) < SimTime::from_ns(2.0));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
