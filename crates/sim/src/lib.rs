//! Deterministic system simulation primitives.
//!
//! The paper evaluates GenPIP with an in-house simulator that embeds
//! per-component latency/energy values and replays the pipeline's workload
//! (Section 5). This crate is that simulator's core:
//!
//! * [`SimTime`] — picosecond-resolution simulated time,
//! * [`PipelineSim`] — a multi-stage, multi-server pipeline scheduler with
//!   per-read sequential dependencies (basecalling carry state, incremental
//!   chaining) and backpressure-free FIFO issue; it produces the makespan and
//!   per-stage utilization that the speedup figures are built from,
//! * [`EnergyMeter`] — per-component energy accounting behind the energy
//!   figures.
//!
//! The scheduler is *deterministic*: identical inputs give identical
//! timelines, which the experiment harnesses rely on.
//!
//! # Example
//!
//! ```
//! use genpip_sim::{Job, PipelineSim, SimTime, StageSpec};
//!
//! // Two stages: one basecaller, two seeding units.
//! let mut sim = PipelineSim::new(vec![
//!     StageSpec::new("basecall", 1).sequential_within_read(),
//!     StageSpec::new("seed", 2),
//! ]);
//! let jobs: Vec<Job> = (0..4)
//!     .map(|i| Job::new(0, i, vec![SimTime::from_ns(100.0), SimTime::from_ns(40.0)]))
//!     .collect();
//! let report = sim.run(&jobs);
//! // Basecalling dominates: 4 × 100 ns, plus the last chunk's seeding.
//! assert_eq!(report.makespan, SimTime::from_ns(440.0));
//! ```

pub mod energy;
pub mod pipeline;
pub mod time;

pub use energy::EnergyMeter;
pub use pipeline::{render_gantt, Job, PipelineReport, PipelineSim, StageSpec, TraceEntry};
pub use time::SimTime;
