//! Session streaming: one worker pool serving two concurrent runs.
//!
//! ```text
//! cargo run --release --example streaming_pipeline [scale]
//! ```
//!
//! Two lazy read sources — think two flowcells finishing at different
//! times — are registered in one `Session` and interleaved fair-share over
//! a single bounded-memory worker pool. Each source has its own sink and
//! sees its own reads in order, the way two tenants of one service
//! instance would; peak memory is the shared in-flight window
//! (queue + workers), not the datasets, and each source's results are
//! bit-identical to running it alone.

use genpip::core::engine::{Flow, Session};
use genpip::core::scheduler::Schedule;
use genpip::core::stream::{StreamEvent, StreamOptions};
use genpip::core::{ErMode, GenPipConfig, Parallelism};
use genpip::datasets::{DatasetProfile, ReadSource, StreamingSimulator};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let run_a = DatasetProfile::ecoli().scaled(scale);
    let run_b = DatasetProfile::ecoli().scaled((scale * 0.6).max(0.01));
    let config = GenPipConfig::for_dataset(&run_a)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Auto));
    let opts = StreamOptions {
        queue_capacity: 8,
        ..StreamOptions::default()
    };

    let source_a = StreamingSimulator::new(&run_a);
    let source_b = StreamingSimulator::new(&run_b);
    println!(
        "session: {} + {} reads (never materialized), fair-share over {} worker(s), queue {}…",
        source_a.reads_remaining().unwrap_or(0),
        source_b.reads_remaining().unwrap_or(0),
        config.parallelism.workers(),
        opts.queue_capacity,
    );

    // Each sink sees its own source's reads, in that source's order, the
    // moment they (and all earlier reads of the same source) finish —
    // print the first few journeys per source, count the rest.
    let (mut shown_a, mut shown_b) = (0usize, 0usize);
    let report = Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::FairShare)
        .options(opts)
        .source("run-a", source_a)
        .source("run-b", source_b)
        .sink("run-a", |event| describe("run-a", &mut shown_a, event))
        .sink("run-b", |event| describe("run-b", &mut shown_b, event))
        .run()
        .expect("session inputs are valid");

    println!("…");
    for source in &report.sources {
        let o = source.summary.outcomes;
        println!(
            "{}: {} reads — {} mapped, {} early-rejected (QSR {}, CMR {}), \
             {} QC-filtered, {} unmapped (peak in-flight {})",
            source.id,
            o.reads_emitted,
            o.mapped,
            o.rejected_qsr + o.rejected_cmr,
            o.rejected_qsr,
            o.rejected_cmr,
            o.filtered_qc,
            o.unmapped,
            source.summary.max_in_flight,
        );
    }
    let o = report.outcomes;
    println!(
        "total: {} reads, {} mapped — one pool, two runs, no per-run silo",
        o.reads_emitted, o.mapped,
    );
    println!(
        "peak in-flight across both sources: {} (enforced bound: {}) — memory stayed O(queue + workers)",
        report.max_in_flight, report.in_flight_limit,
    );
}

fn describe(name: &str, shown: &mut usize, event: StreamEvent) {
    let StreamEvent::Read(run) = event else {
        return;
    };
    if *shown < 4 {
        *shown += 1;
        println!(
            "  {name} read {:>3}: {:>2} chunks, {:>6} samples basecalled -> {}",
            run.id,
            run.total_chunks,
            run.basecalled_samples(),
            outcome_label(&run.outcome),
        );
    }
}

fn outcome_label(outcome: &genpip::core::ReadOutcome) -> &'static str {
    use genpip::core::ReadOutcome::*;
    match outcome {
        Mapped(_) => "mapped",
        RejectedQsr { .. } => "rejected (QSR)",
        RejectedCmr { .. } => "rejected (CMR)",
        FilteredQc { .. } => "filtered (QC)",
        Unmapped { .. } => "unmapped",
    }
}
