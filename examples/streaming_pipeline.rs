//! Streaming GenPIP: constant-memory execution over a lazy read source.
//!
//! ```text
//! cargo run --release --example streaming_pipeline [scale]
//! ```
//!
//! Instead of materializing a `SimulatedDataset` and a `PipelineRun`, this
//! example pulls reads one at a time from a `StreamingSimulator` (which
//! synthesizes them on demand), pushes them through the bounded-queue
//! streaming executor, and consumes each `ReadRun` from the sink callback
//! the moment it is ready — the way a real-time sequencing run would be
//! processed. Peak memory is the in-flight window (queue + workers), not
//! the dataset.

use genpip::core::stream::{run_genpip_streaming, StreamEvent, StreamOptions};
use genpip::core::{ErMode, GenPipConfig, Parallelism};
use genpip::datasets::{DatasetProfile, ReadSource, StreamingSimulator};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let profile = DatasetProfile::ecoli().scaled(scale);
    let config = GenPipConfig::for_dataset(&profile)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Auto));
    let opts = StreamOptions {
        queue_capacity: 8,
        progress_every: 0,
    };

    let mut source = StreamingSimulator::new(&profile);
    println!(
        "streaming {} reads (never materialized) through {} worker(s), queue {}…",
        source.reads_remaining().unwrap_or(0),
        config.parallelism.workers(),
        opts.queue_capacity,
    );

    // The sink sees every read in id order as soon as it (and all earlier
    // reads) finish — print the first few journeys, count the rest.
    let mut shown = 0usize;
    let summary = run_genpip_streaming(&mut source, &config, ErMode::Full, &opts, |event| {
        let StreamEvent::Read(run) = event else {
            return;
        };
        if shown < 8 {
            shown += 1;
            println!(
                "  read {:>3}: {:>2} chunks, {:>6} samples basecalled -> {}",
                run.id,
                run.total_chunks,
                run.basecalled_samples(),
                outcome_label(&run.outcome),
            );
        }
    });

    let o = summary.outcomes;
    println!("…");
    println!(
        "{} reads: {} mapped, {} early-rejected (QSR {}, CMR {}), {} QC-filtered, {} unmapped",
        o.reads_emitted,
        o.mapped,
        o.rejected_qsr + o.rejected_cmr,
        o.rejected_qsr,
        o.rejected_cmr,
        o.filtered_qc,
        o.unmapped,
    );
    println!(
        "peak in-flight reads: {} (enforced bound: {}) — memory stayed O(queue + workers)",
        summary.max_in_flight, summary.in_flight_limit,
    );
}

fn outcome_label(outcome: &genpip::core::ReadOutcome) -> &'static str {
    use genpip::core::ReadOutcome::*;
    match outcome {
        Mapped(_) => "mapped",
        RejectedQsr { .. } => "rejected (QSR)",
        RejectedCmr { .. } => "rejected (CMR)",
        FilteredQc { .. } => "filtered (QC)",
        Unmapped { .. } => "unmapped",
    }
}
