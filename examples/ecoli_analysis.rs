//! E. coli end-to-end analysis: workloads, system comparison, ER statistics.
//!
//! ```text
//! cargo run --release --example ecoli_analysis [scale]
//! ```
//!
//! Builds the E. coli-like dataset (optionally scaled, default 0.25 for a
//! quick run), executes all four workloads (conventional, CP, CP+QSR,
//! CP+ER), evaluates the ten systems of the paper's Figures 10–11, and
//! prints speedups, energy reductions, and the early-rejection statistics.

use genpip::core::analysis::{cmr_analysis, qsr_analysis, UselessReadStats};
use genpip::core::systems::{
    energy_reductions_vs, evaluate_all, speedups_vs, SystemCosts, SystemKind, WorkloadSet,
};
use genpip::core::GenPipConfig;
use genpip::datasets::DatasetProfile;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let profile = DatasetProfile::ecoli().scaled(scale);
    println!(
        "dataset: {} reads over a {} bp genome (scale {scale})",
        profile.n_reads, profile.genome_len
    );
    let dataset = profile.generate();
    let config = GenPipConfig::for_dataset(&profile);

    println!("running the four workloads (conventional, CP, CP+QSR, CP+ER)…");
    let workloads = WorkloadSet::build(&dataset, &config);

    // Early-rejection quality, judged against the conventional oracle.
    let qsr = qsr_analysis(&workloads.cp_full, &workloads.conventional, config.theta_qs);
    let cmr = cmr_analysis(&workloads.cp_full, &workloads.conventional);
    let useless = UselessReadStats::of(&workloads.conventional);
    println!("\nuseless reads (conventional flow):");
    println!(
        "  {:.1}% low quality + {:.1}% unmapped = {:.1}% useless (paper: 20.5% + 10% = 30.5%)",
        useless.low_quality_fraction() * 100.0,
        useless.unmapped_fraction() * 100.0,
        useless.useless_fraction() * 100.0
    );
    println!("early rejection (full GenPIP):");
    println!(
        "  QSR rejected {:.1}% of reads ({:.1}% of rejections were false negatives)",
        qsr.rejection_ratio() * 100.0,
        qsr.false_negative_ratio() * 100.0
    );
    println!(
        "  CMR rejected {:.1}% of reads ({:.1}% false negatives)",
        cmr.rejection_ratio() * 100.0,
        cmr.false_negative_ratio() * 100.0
    );
    let saved = 1.0
        - workloads.cp_full.totals().samples as f64
            / workloads.conventional.totals().samples as f64;
    println!("  basecalling work saved: {:.1}%", saved * 100.0);

    println!("\nevaluating the ten systems…");
    let evals = evaluate_all(&workloads, &SystemCosts::default());
    let speedups = speedups_vs(&evals, SystemKind::Cpu);
    let energies = energy_reductions_vs(&evals, SystemKind::Cpu);
    println!(
        "{:<16} {:>12} {:>10} {:>12}",
        "system", "time", "speedup", "energy red."
    );
    for (eval, ((_, s), (_, e))) in evals.iter().zip(speedups.iter().zip(&energies)) {
        println!(
            "{:<16} {:>12} {:>9.2}x {:>11.2}x",
            eval.kind.name(),
            eval.time.to_string(),
            s,
            e
        );
    }
    let g = |k: SystemKind| speedups.iter().find(|(s, _)| *s == k).unwrap().1;
    println!(
        "\nheadlines: GenPIP is {:.1}x CPU (paper 41.6x), {:.1}x GPU (paper 8.4x), {:.2}x PIM (paper 1.39x)",
        g(SystemKind::GenPip),
        g(SystemKind::GenPip) / g(SystemKind::Gpu),
        g(SystemKind::GenPip) / g(SystemKind::Pim)
    );
}
