//! Quickstart: simulate a small sequencing run and push it through GenPIP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a miniature E. coli-like dataset (synthetic genome, synthetic
//! raw nanopore signals), runs GenPIP's chunk-based pipeline with early
//! rejection through the `Session` engine, and prints what happened to
//! every class of read.

use genpip::core::engine::{Flow, Session};
use genpip::core::pipeline::{ErMode, ReadOutcome};
use genpip::core::stream::StreamEvent;
use genpip::core::GenPipConfig;
use genpip::datasets::DatasetProfile;

fn main() {
    // A ~20 kb genome with ~20 reads: enough to see every outcome class.
    let profile = DatasetProfile::ecoli().scaled(0.03);
    println!(
        "generating dataset '{}' ({} reads, {} bp genome)…",
        profile.name, profile.n_reads, profile.genome_len
    );
    let dataset = profile.generate();

    let config = GenPipConfig::for_dataset(&dataset.profile);
    println!(
        "GenPIP config: {}-base chunks, N_qs={}, N_cm={}, θ_qs={}, θ_cm={}",
        config.chunk_bases, config.n_qs, config.n_cm, config.theta_qs, config.theta_cm
    );

    // One session, one source, a Vec sink — the minimal spelling of the
    // engine every driver (batch, streaming, CLI) runs on.
    let n_cm = config.n_cm;
    let mut reads = Vec::new();
    let report = Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .source("quickstart", dataset.stream())
        .sink("quickstart", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("session inputs are valid");

    let mut mapped = 0;
    let mut qsr = 0;
    let mut cmr = 0;
    let mut qc = 0;
    let mut unmapped = 0;
    for read in &reads {
        match &read.outcome {
            ReadOutcome::Mapped(m) => {
                mapped += 1;
                println!(
                    "read {:>3}: mapped {}:{}-{} ({}) identity {:.1}% mapq {}",
                    read.id,
                    dataset.reference.name(),
                    m.ref_start,
                    m.ref_end,
                    m.strand,
                    m.identity * 100.0,
                    m.mapq
                );
            }
            ReadOutcome::RejectedQsr { sampled_aqs } => {
                qsr += 1;
                println!(
                    "read {:>3}: early-rejected by QSR after {} of {} chunks (sampled AQS {:.1})",
                    read.id,
                    read.chunks.len(),
                    read.total_chunks,
                    sampled_aqs
                );
            }
            ReadOutcome::RejectedCmr { chain_score } => {
                cmr += 1;
                println!(
                    "read {:>3}: early-rejected by CMR (chain score {:.0} after {n_cm} chunks)",
                    read.id, chain_score
                );
            }
            ReadOutcome::FilteredQc { aqs } => {
                qc += 1;
                println!(
                    "read {:>3}: discarded by read quality control (AQS {aqs:.1})",
                    read.id
                );
            }
            ReadOutcome::Unmapped { chain_score } => {
                unmapped += 1;
                println!(
                    "read {:>3}: unmapped (best chain score {chain_score:.0})",
                    read.id
                );
            }
        }
    }

    let totals = report.totals;
    println!("\nsummary: {mapped} mapped, {qsr} QSR-rejected, {cmr} CMR-rejected, {qc} QC-filtered, {unmapped} unmapped");
    println!(
        "work: {} samples basecalled of {} total ({:.1}% saved by early rejection)",
        totals.samples,
        dataset.total_samples(),
        100.0 * (1.0 - totals.samples as f64 / dataset.total_samples() as f64)
    );
}
