//! PIM hardware report: Table 2 budget, device constants, and the GenPIP
//! schedule's stage utilizations on a sample workload.
//!
//! ```text
//! cargo run --release --example pim_hardware_report
//! ```

use genpip::core::pipeline::{ErMode, PipelineRun};
use genpip::core::stream::StreamEvent;
use genpip::core::systems::costs::SoftwareCosts;
use genpip::core::systems::hardware::evaluate_genpip;
use genpip::core::{Flow, GenPipConfig, Session};
use genpip::datasets::DatasetProfile;
use genpip::mapping::{ShardedReferenceIndex, Shards};
use genpip::pim::area_power::genpip_table2;
use genpip::pim::{BasecallModule, DpModule, PimTech, SeedingModule, SeedingUnitMap};
use std::sync::Arc;

fn main() {
    let tech = PimTech::paper_32nm();

    println!("== Table 2: area and power budget ==");
    println!("{}\n", genpip_table2());

    println!("== Device constants (32 nm) ==");
    println!("crossbar MVM cycle:      {}", tech.t_mvm_cycle);
    println!(
        "basecall pipeline depth: {} cycles, II = {}",
        tech.bc_pipeline_depth_cycles, tech.bc_initiation_interval_cycles
    );
    println!("CAM search:              {}", tech.t_cam_search);
    println!("ReRAM read:              {}", tech.t_ram_read);
    println!("DP step:                 {}", tech.t_dp_step);
    let bc = BasecallModule::new(tech);
    let seed = SeedingModule::new(tech);
    let dp = DpModule::new(tech);
    println!("\n== Module service times for a 300-base chunk ==");
    println!("basecall (2400 samples): {}", bc.chunk_service(2400));
    println!(
        "seeding (300 shifts, 60 hits): {}",
        seed.chunk_service(300, 60)
    );
    println!("chaining (60 anchors):   {}", dp.chain_service(60));
    println!("alignment (9 kb read):   {}", dp.align_service(9_000));

    println!("\n== Seeding-unit CAM image (sharded reference index) ==");
    let dataset = DatasetProfile::ecoli().scaled(0.1).generate();
    let index = ShardedReferenceIndex::build(&dataset.reference, 15, 10, Shards::Fixed(4));
    let cam_image = SeedingUnitMap::load(&index, SeedingUnitMap::PAPER_ROWS_PER_ARRAY);
    print!("{}", cam_image.report());
    println!("(one shard per CAM subarray group; a query fans out to all groups in parallel)");

    println!("\n== GenPIP schedule on a sample workload ==");
    let config = GenPipConfig::for_dataset(&dataset.profile);
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(ErMode::Full))
        .source("sample", dataset.stream())
        .sink("sample", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("valid session");
    let run = PipelineRun {
        config: Arc::new(config),
        er: ErMode::Full,
        chunked: true,
        reads,
    };
    let eval = evaluate_genpip(&run, &SoftwareCosts::calibrated(), &tech);
    println!("makespan: {}", eval.time);
    for (stage, util) in &eval.stage_utilization {
        println!("  {stage:<10} utilization {:>6.2}%", util * 100.0);
    }
    println!("energy breakdown:\n{}", eval.energy);

    // A miniature Gantt of the chunk pipeline: three reads of four chunks on
    // a 1-stream basecaller feeding seeding and DP, showing the CP overlap.
    println!("\n== Chunk-pipeline Gantt (3 reads x 4 chunks, illustrative) ==");
    use genpip::sim::{render_gantt, Job, PipelineSim, SimTime, StageSpec};
    let mut sim = PipelineSim::new(vec![
        StageSpec::new("basecall", 1).sequential_within_read(),
        StageSpec::new("seed", 4),
        StageSpec::new("dp", 4).sequential_within_read(),
    ]);
    let jobs: Vec<Job> = (0..12)
        .map(|i| {
            Job::new(
                i / 4,
                i % 4,
                vec![
                    SimTime::from_us(500.0),
                    SimTime::from_us(60.0),
                    SimTime::from_us(40.0),
                ],
            )
        })
        .collect();
    let report = sim.run_traced(&jobs);
    print!("{}", render_gantt(&report, &["basecall", "seed", "dp"], 72));
    println!("(digits are read ids; '.' is idle)");
}
