//! Using the read mapper as a standalone library.
//!
//! ```text
//! cargo run --release --example mapping_playground
//! ```
//!
//! Indexes a synthetic genome, then maps a handful of hand-crafted queries —
//! exact substrings, reverse complements, error-laden reads, and an alien
//! read — printing the mapping each produces.

use genpip::genomics::rng::seeded;
use genpip::genomics::{DnaSeq, ErrorModel, GenomeBuilder};
use genpip::mapping::align::cigar_string;
use genpip::mapping::{Mapper, MapperParams, Shards};

fn describe(name: &str, mapper: &Mapper, query: &DnaSeq) {
    let result = mapper.map(query);
    match result.mapping {
        Some(m) => {
            let cigar = cigar_string(&m.cigar);
            let cigar_short = if cigar.len() > 40 {
                format!("{}…", &cigar[..40])
            } else {
                cigar
            };
            println!(
                "{name:<24} -> {}:{}-{} ({}) chain {:.0} identity {:.1}% mapq {} cigar {}",
                mapper.genome().name(),
                m.ref_start,
                m.ref_end,
                m.strand,
                m.chain_score,
                m.identity * 100.0,
                m.mapq,
                cigar_short
            );
        }
        None => println!(
            "{name:<24} -> unmapped (best chain score {:.1})",
            result.best_chain_score
        ),
    }
}

fn main() {
    let genome = GenomeBuilder::new(80_000).seed(42).name("toy-ref").build();
    let params = MapperParams {
        shards: Shards::Fixed(4),
        ..MapperParams::default()
    };
    let mapper = Mapper::build(&genome, params);
    println!(
        "indexed {}: {} distinct minimizers, {} entries across {} shards \
         (largest shard {} entries)\n",
        genome,
        mapper.index().distinct_minimizers(),
        mapper.index().total_entries(),
        mapper.index().shard_count(),
        mapper.index().max_shard_entries()
    );

    let exact = genome.sequence().subseq(30_000, 1_200);
    describe("exact substring", &mapper, &exact);

    let rc = genome.sequence().subseq(55_000, 900).reverse_complement();
    describe("reverse complement", &mapper, &rc);

    let mut rng = seeded(7);
    let (noisy, _) =
        ErrorModel::with_total_rate(0.12).apply(&genome.sequence().subseq(10_000, 1_500), &mut rng);
    describe("12%-error read", &mapper, &noisy);

    let (very_noisy, _) =
        ErrorModel::with_total_rate(0.35).apply(&genome.sequence().subseq(10_000, 1_500), &mut rng);
    describe("35%-error read", &mapper, &very_noisy);

    let alien = GenomeBuilder::new(1_500)
        .seed(999)
        .build()
        .sequence()
        .clone();
    describe("alien read", &mapper, &alien);

    let short: DnaSeq = "ACGTACGTAT".parse().expect("valid DNA");
    describe("10 bp fragment", &mapper, &short);
}
