//! Early-rejection threshold tuning — an ablation beyond the paper's
//! sensitivity sweeps.
//!
//! ```text
//! cargo run --release --example early_rejection_tuning [scale]
//! ```
//!
//! The paper sweeps the *number of chunks* (`N_qs`, `N_cm`) at fixed
//! thresholds; this example sweeps the thresholds themselves (`θ_qs`,
//! `θ_cm`) and prints the rejection/false-negative trade-off grid, which is
//! how an operator would pick an operating point for a new chemistry.

use genpip::core::analysis::{cmr_analysis, qsr_analysis};
use genpip::core::pipeline::{ErMode, PipelineRun};
use genpip::core::stream::StreamEvent;
use genpip::core::{Flow, GenPipConfig, Session};
use genpip::datasets::{DatasetProfile, SimulatedDataset};
use std::sync::Arc;

/// One batch run through the `Session` engine, packaged as the
/// [`PipelineRun`] the analysis helpers consume.
fn run_flow(dataset: &SimulatedDataset, config: &GenPipConfig, flow: Flow) -> PipelineRun {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(flow)
        .source("sweep", dataset.stream())
        .sink("sweep", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("valid session");
    PipelineRun {
        config: Arc::new(config.clone()),
        er: match flow {
            Flow::GenPip(er) => er,
            Flow::Conventional => ErMode::None,
        },
        chunked: matches!(flow, Flow::GenPip(_)),
        reads,
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let profile = DatasetProfile::ecoli().scaled(scale);
    let dataset = profile.generate();
    let base = GenPipConfig::for_dataset(&profile);
    let oracle = run_flow(&dataset, &base, Flow::Conventional);

    println!("θ_qs sweep (QSR only, N_qs = {}):", base.n_qs);
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "θ_qs", "rejected", "FN ratio", "samples saved"
    );
    for theta in [5.0, 6.0, 7.0, 8.0, 9.0] {
        let mut config = base.clone();
        config.theta_qs = theta;
        let run = run_flow(&dataset, &config, Flow::GenPip(ErMode::QsrOnly));
        let a = qsr_analysis(&run, &oracle, theta);
        let saved = 1.0 - run.totals().samples as f64 / oracle.totals().samples as f64;
        println!(
            "{theta:>8.1} {:>11.1}% {:>11.1}% {:>13.1}%",
            a.rejection_ratio() * 100.0,
            a.false_negative_ratio() * 100.0,
            saved * 100.0
        );
    }

    println!("\nθ_cm sweep (full ER, N_cm = {}):", base.n_cm);
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "θ_cm", "rejected", "FN ratio", "samples saved"
    );
    for theta in [15.0, 55.0, 150.0, 400.0, 800.0] {
        let mut config = base.clone();
        config.theta_cm = theta;
        let run = run_flow(&dataset, &config, Flow::GenPip(ErMode::Full));
        let a = cmr_analysis(&run, &oracle);
        let saved = 1.0 - run.totals().samples as f64 / oracle.totals().samples as f64;
        println!(
            "{theta:>8.1} {:>11.1}% {:>11.1}% {:>13.1}%",
            a.rejection_ratio() * 100.0,
            a.false_negative_ratio() * 100.0,
            saved * 100.0
        );
    }

    println!("\n(the paper's operating point is θ_qs = 7 with dataset-specific N_qs/N_cm)");
}
