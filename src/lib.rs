//! # GenPIP — in-memory acceleration of genome analysis
//!
//! A full reproduction of *"GenPIP: In-Memory Acceleration of Genome
//! Analysis via Tight Integration of Basecalling and Read Mapping"*
//! (Mao et al., MICRO 2022) as a Rust workspace. This facade crate
//! re-exports every component; see README.md for the architecture overview
//! and DESIGN.md for the per-experiment index.
//!
//! | module | contents |
//! |---|---|
//! | [`genomics`] | sequences, k-mers, qualities, reads, synthetic genomes, error models |
//! | [`signal`] | pore model, raw-signal synthesis, chunking, normalization |
//! | [`basecall`] | MVM-emission Viterbi basecaller with per-base qualities |
//! | [`mapping`] | minimizer index, seeding, chaining DP, banded alignment |
//! | [`sim`] | deterministic pipeline scheduler and energy accounting |
//! | [`pim`] | NVM crossbar / CAM models, GenPIP hardware modules, Table 2 |
//! | [`datasets`] | synthetic E. coli / human dataset profiles |
//! | [`io`] | on-disk GSC signal containers, seekable file sources, checkpoint files |
//! | [`core`] | chunk-based pipeline, early rejection, system models, experiments |
//!
//! # Quickstart
//!
//! ```
//! use genpip::core::{pipeline, GenPipConfig};
//! use genpip::datasets::DatasetProfile;
//!
//! // A miniature E. coli-like run: raw signals in, mapped reads out.
//! let dataset = DatasetProfile::ecoli().scaled(0.02).generate();
//! let config = GenPipConfig::for_dataset(&dataset.profile);
//! let run = pipeline::run_genpip(&dataset, &config, pipeline::ErMode::Full);
//! let mapped = run.reads.iter().filter(|r| r.outcome.is_mapped()).count();
//! assert!(mapped > 0);
//! ```

pub use genpip_basecall as basecall;
pub use genpip_core as core;
pub use genpip_datasets as datasets;
pub use genpip_genomics as genomics;
pub use genpip_io as io;
pub use genpip_mapping as mapping;
pub use genpip_pim as pim;
pub use genpip_signal as signal;
pub use genpip_sim as sim;
