//! The `genpip` command-line tool.
//!
//! ```text
//! genpip simulate --profile ecoli --scale 0.05 --out run1
//! genpip map --reference run1.fasta --reads run1.fastq --paf run1.paf
//! genpip run --profile ecoli --scale 0.1 --er full
//! genpip experiment fig10 --scale 0.2
//! ```
//!
//! Subcommands:
//!
//! * `simulate` — generate a synthetic dataset, basecall it, and write the
//!   reference (FASTA) plus basecalled reads (FASTQ);
//! * `map` — map a FASTQ of reads against a FASTA reference, printing (or
//!   writing) PAF records;
//! * `run` — execute the full GenPIP pipeline on a synthetic dataset and
//!   print the outcome/workload summary;
//! * `stream` — the same pipeline executed by the `Session` engine: one
//!   bounded-memory worker pool serving one or many read sources (repeated
//!   `--source` specs) under a `--schedule` policy, with per-source
//!   progress and summaries. The datasets are never materialized, and at
//!   most `--queue` + workers reads are in memory across all sources;
//! * `serve` — a *live* session driven by a script: sources attach and
//!   detach while the session runs, exercising the control plane
//!   (`SessionControl::attach`/`detach`/`drain`) without a network
//!   listener. Script steps fire after a given number of emitted reads;
//!   `attach NAME file=PATH` replays an on-disk GSC container;
//! * `pack` — export a simulated dataset into an on-disk GSC raw-signal
//!   container, optionally verifying the round-trip bit-for-bit;
//! * `inspect` — dump a GSC container's header, layout, and (optionally)
//!   per-read records, verifying checksums on request;
//! * `experiment` — regenerate one of the paper's figures/tables.

use genpip::core::engine::{
    AttachSpec, Flow, PendingAttach, PendingDetach, Session, SessionControl,
};
use genpip::core::experiments;
use genpip::core::pipeline::{ErMode, PipelineRun, ReadOutcome};
use genpip::core::scheduler::Schedule;
use genpip::core::stream::{FastqSink, StreamEvent, StreamOptions};
use genpip::core::{FaultPolicy, GenPipConfig, Lanes, Parallelism};
use genpip::datasets::{DatasetProfile, FaultInjector, ReadSource, StreamingSimulator};
use genpip::genomics::fastx;
use genpip::genomics::{Genome, GenomeBuilder};
use genpip::io::{
    pack_source, CheckpointFile, FastqMark, GscReadSource, GscReader, GscStatus, SourceMark,
};
use genpip::mapping::paf::{write_paf, PafRecord};
use genpip::mapping::{MapperParams, ReferenceSet, Shards};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom};
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&opts),
        "map" => cmd_map(&opts),
        "run" => cmd_run(&opts),
        "stream" => cmd_stream(&opts),
        "serve" => cmd_serve(&opts),
        "pack" => cmd_pack(&opts),
        "inspect" => cmd_inspect(&opts),
        "experiment" => cmd_experiment(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "genpip — in-memory genome analysis (GenPIP reproduction)

USAGE:
  genpip simulate --profile <ecoli|human> [--scale F] --out <prefix>
  genpip map --reference <ref.fasta>... --reads <reads.fastq> [--paf <out.paf>]
             [--shards <single|auto|N>]
  genpip run [--profile <ecoli|human>] [--scale F] [--er <full|qsr|cp|off>]
             [--shards <single|auto|N>] [--lanes <auto|N>]
             [--on-fault <fail|quarantine|retry[:N]>]
             [--reference SPEC]...
  genpip stream [--profile <ecoli|human>] [--scale F] [--er <full|qsr|cp|off>]
               [--source SPEC]... [--signal-in SPEC]...
               [--schedule <fair|sequential|priority>]
               [--queue N] [--progress N] [--threads <serial|auto|N>]
               [--shards <single|auto|N>] [--lanes <auto|N>]
               [--fastq-out PATH]
               [--on-fault <fail|quarantine|retry[:N]>] [--inject-faults RATE]
               [--checkpoint PATH] [--checkpoint-every N] [--resume PATH]
               [--drain-after N]
  genpip pack [--profile <ecoli|human>] [--scale F] --out <file.gsc> [--verify]
  genpip inspect <file.gsc> [--reads N] [--verify]
  genpip serve --script <FILE> [--er <full|qsr|cp|off>]
               [--schedule <fair|sequential|priority|deadline>]
               [--queue N] [--threads <serial|auto|N>] [--shards <single|auto|N>]
               [--lanes <auto|N>] [--max-sources N]
  genpip experiment <fig04|fig07|fig10|fig11|fig12|fig13|tab01|tab02|useless|ablations> [--scale F]

OPTIONS:
  --profile   dataset profile (default ecoli)
  --scale     dataset scale factor in (0,1] (default 0.1 for simulate/run/stream, 1.0 for experiment)
  --er        early-rejection mode for `run`/`stream` (default full)
  --out       output file prefix for `simulate`
  --paf       PAF output path for `map` (default: stdout)
  --reference for `map`: a reference FASTA, repeatable — several files form
              a pan-genome panel; each read maps against every reference and
              the deterministic best hit (chain score, then reference name,
              then position) names its reference in the PAF target column.
              For `run`: an extra synthetic reference mapped alongside the
              profile's own, repeatable. SPEC is comma-joined key=value
              pairs: len=N (required), name=ID (default refN), seed=S
  --source    one read source for `stream`, repeatable. SPEC is comma-joined
              key=value pairs: profile=<ecoli|human> (required),
              scale=F (default: --scale), name=ID (default: profileN),
              weight=N (priority schedule share, default 1).
              Without --source, one source is built from --profile/--scale.
  --signal-in one on-disk GSC signal container streamed as a read source,
              repeatable (after every --source). SPEC is a path followed by
              optional comma-joined key=value pairs:
              PATH[,name=ID][,offset=K][,weight=N]. offset=K starts the
              replay at read index K; output is bit-identical to streaming
              the same dataset from memory
  --checkpoint
              `stream` writes a resumable checkpoint to PATH (atomically,
              via rename) every --checkpoint-every reads and once more when
              the session finishes. Checkpoints record per-source read
              offsets and, with --fastq-out, the flushed FASTQ byte
              position of every output file
  --checkpoint-every
              checkpoint cadence in emitted reads (default 25)
  --resume    restart a `stream` run from a checkpoint written by
              --checkpoint. Sources must be --signal-in containers (file
              sources are seekable; simulated ones are not); FASTQ outputs
              are truncated to the recorded byte position and appended to,
              so the resumed file is byte-identical to an uninterrupted run
  --drain-after
              drain the session (stop intake, finish in-flight reads) once
              N reads have been emitted — a deterministic stand-in for an
              interrupted run when testing --checkpoint/--resume
  --schedule  how `stream` interleaves its sources over the one worker
              pool: fair (round-robin, default), sequential (drain in
              registration order), priority (weighted by each source's
              weight=)
  --queue     `stream` work-queue capacity; resident read chains across
              all sources <= queue + workers (default 8)
  --fastq-out write every fully-basecalled read as FASTQ. One source
              writes PATH verbatim; N sources write PATH.<name> each
  --progress  `stream` per-source progress line cadence in reads (default 50, 0 = off)
  --threads   `stream` worker threads (default: GENPIP_PARALLELISM env or auto)
  --shards    reference-index shard count for `map`/`run`/`stream`; results
              are bit-identical for every setting (default single)
  --lanes     Viterbi lane-batch width for `run`/`stream`/`serve`: how many
              chunks a worker decodes in lockstep through the SoA kernel.
              auto picks the default width; N >= 1 fixes it (1 = scalar
              decode, widths above the kernel maximum clamp); 0 is an
              error. Results are bit-identical for every setting.
              Default: GENPIP_LANES env, then auto
  --on-fault  what a faulting read does to the run (default fail):
              fail aborts the process, quarantine contains the read and
              keeps going, retry[:N] re-runs the read up to N times
              (default 2) before quarantining. Exit code is nonzero when
              reads failed unless quarantine was requested explicitly
  --inject-faults
              corrupt this fraction of reads in every `stream` source
              (deterministic, seeded) — a fault-tolerance testing aid.
              Implies quarantine when --on-fault is not given
  --out       for `pack`: the GSC container path to write
  --verify    for `pack`: re-open the container after writing, check every
              checksum, and compare each decoded read bit-for-bit against a
              fresh simulation of the profile. For `inspect`: check every
              record checksum
  --reads     for `inspect`: also dump the first N per-read records
  --script    `serve` driver script, one step per line (# starts a comment):
                attach NAME profile=<ecoli|human>[,scale=F][,weight=N][,target=T]
                attach NAME file=PATH[,offset=K][,weight=N][,target=T]
                at COUNT attach NAME profile=...|file=...
                at COUNT detach NAME
                at COUNT drain
              Steps without `at` register before the run; `at COUNT` steps
              fire through the live control plane once COUNT reads have
              been emitted across all sources. target= is the source's
              deadline-schedule residency goal in chunk-work units
  --max-sources
              `serve` admission bound: a live attach beyond this many
              concurrently-attached sources is refused (default 64)";

/// Parsed command line: repeatable options keep every occurrence in order
/// (`--source` is the only multi-valued one today); single-valued lookups
/// take the last occurrence.
type Options = HashMap<String, Vec<String>>;

/// Options that are bare flags: present or absent, never consuming a value.
const FLAG_OPTIONS: &[&str] = &["verify"];

fn parse_options(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts: Options = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            let value = if FLAG_OPTIONS.contains(&key) {
                "true".to_string()
            } else {
                it.next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?
                    .clone()
            };
            opts.entry(key.to_string()).or_default().push(value);
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((opts, positional))
}

type Parsed = (Options, Vec<String>);

/// The last value given for a single-valued option.
fn opt<'a>(parsed: &'a Parsed, key: &str) -> Option<&'a str> {
    parsed
        .0
        .get(key)
        .and_then(|vals| vals.last())
        .map(String::as_str)
}

/// Every value given for a repeatable option, in order.
fn opt_all<'a>(parsed: &'a Parsed, key: &str) -> &'a [String] {
    parsed.0.get(key).map(Vec::as_slice).unwrap_or(&[])
}

fn profile_by_name(name: &str) -> Result<DatasetProfile, String> {
    match name {
        "ecoli" => Ok(DatasetProfile::ecoli()),
        "human" => Ok(DatasetProfile::human()),
        other => Err(format!("unknown profile {other:?} (use ecoli or human)")),
    }
}

fn profile_from(parsed: &Parsed) -> Result<DatasetProfile, String> {
    let profile = profile_by_name(opt(parsed, "profile").unwrap_or("ecoli"))?;
    Ok(profile.scaled(scale_from(parsed, 0.1)?))
}

fn parse_scale(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("invalid scale {s:?}"))?;
    if v > 0.0 && v <= 1.0 {
        Ok(v)
    } else {
        Err("scale must be in (0, 1]".into())
    }
}

fn scale_from(parsed: &Parsed, default: f64) -> Result<f64, String> {
    match opt(parsed, "scale") {
        None => Ok(default),
        Some(s) => parse_scale(s).map_err(|e| format!("--scale: {e}")),
    }
}

fn cmd_simulate(parsed: &Parsed) -> Result<(), String> {
    let profile = profile_from(parsed)?;
    let prefix = opt(parsed, "out").ok_or("simulate needs --out <prefix>")?;
    println!(
        "simulating {} ({} reads, {} bp genome)…",
        profile.name, profile.n_reads, profile.genome_len
    );
    let dataset = profile.generate();
    let reads = experiments::tab01::basecall_dataset(&dataset);

    let fasta_path = format!("{prefix}.fasta");
    let fastq_path = format!("{prefix}.fastq");
    let fasta = File::create(&fasta_path).map_err(|e| e.to_string())?;
    fastx::write_fasta(BufWriter::new(fasta), &dataset.reference).map_err(|e| e.to_string())?;
    let fastq = File::create(&fastq_path).map_err(|e| e.to_string())?;
    fastx::write_fastq(BufWriter::new(fastq), &reads).map_err(|e| e.to_string())?;
    println!(
        "wrote {fasta_path} (reference) and {fastq_path} ({} basecalled reads)",
        reads.len()
    );
    Ok(())
}

fn cmd_pack(parsed: &Parsed) -> Result<(), String> {
    let profile = profile_from(parsed)?;
    let out = opt(parsed, "out").ok_or("pack needs --out <file.gsc>")?;
    println!(
        "packing {} ({} reads, {} bp genome) into {out}…",
        profile.name, profile.n_reads, profile.genome_len
    );
    let mut source = StreamingSimulator::new(&profile);
    let summary = pack_source(out, &mut source).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {} reads, {} record bytes ({} file bytes)",
        summary.reads, summary.data_bytes, summary.file_bytes
    );
    if opt(parsed, "verify").is_some() {
        let mut reader = GscReader::open(out).map_err(|e| format!("{out}: {e}"))?;
        let checked = reader
            .verify()
            .map_err(|e| format!("{out}: verification failed: {e}"))?;
        reader
            .seek_to(0)
            .map_err(|e| format!("{out}: verification failed: {e}"))?;
        let mut fresh = StreamingSimulator::new(&profile);
        let mut index = 0usize;
        loop {
            let stored = reader
                .next_record()
                .map_err(|e| format!("{out}: verification failed: {e}"))?;
            let simulated = fresh.next_read();
            match (stored, simulated) {
                (None, None) => break,
                (Some(stored), Some(simulated)) if stored == simulated => index += 1,
                _ => {
                    return Err(format!(
                        "{out}: verification failed: read {index} does not round-trip \
                         bit-identically"
                    ))
                }
            }
        }
        println!("verified: {checked} reads round-trip bit-identically");
    }
    Ok(())
}

fn cmd_inspect(parsed: &Parsed) -> Result<(), String> {
    let path = parsed
        .1
        .first()
        .ok_or("inspect needs a container path (genpip inspect <file.gsc>)")?;
    let mut reader = GscReader::open(path).map_err(|e| format!("{path}: {e}"))?;
    let model = reader.pore_model();
    println!("container:  {path}");
    println!(
        "reference:  {} ({} bp, 2-bit packed)",
        reader.reference().name(),
        reader.reference().len()
    );
    println!(
        "pore model: k={} ({} levels), event σ {:.4}, mean dwell {:.3} samples/base",
        model.k(),
        model.states(),
        model.event_std(),
        reader.mean_dwell()
    );
    println!(
        "layout:     {} header bytes, {} record bytes, {} file bytes",
        reader.header_bytes(),
        reader.data_bytes(),
        reader.file_bytes()
    );
    let offsets = reader.offsets();
    match (offsets.first(), offsets.last()) {
        (Some(first), Some(last)) => println!(
            "records:    {} (offset table spans {first}..{last})",
            reader.read_count()
        ),
        _ => println!("records:    0"),
    }
    let dump: usize = match opt(parsed, "reads") {
        None => 0,
        Some(s) => s.parse().map_err(|_| format!("invalid --reads {s:?}"))?,
    };
    for index in 0..dump.min(reader.read_count()) {
        let read = reader
            .read_at(index)
            .map_err(|e| format!("{path}: read {index}: {e}"))?;
        println!(
            "  read {:>4}  id {:>5}  {:>7} samples  {:>6} bases  {:?}",
            index,
            read.id,
            read.signal.samples.len(),
            read.signal.truth.len(),
            read.origin,
        );
    }
    if opt(parsed, "verify").is_some() {
        let checked = reader
            .verify()
            .map_err(|e| format!("{path}: verification failed: {e}"))?;
        println!("verified:   {checked} record checksums OK");
    }
    Ok(())
}

fn cmd_map(parsed: &Parsed) -> Result<(), String> {
    let reference_paths = opt_all(parsed, "reference");
    if reference_paths.is_empty() {
        return Err("map needs --reference (repeat the flag for a pan-genome panel)".into());
    }
    let reads_path = opt(parsed, "reads").ok_or("map needs --reads")?;
    let mut genomes = Vec::with_capacity(reference_paths.len());
    for path in reference_paths {
        let genome = fastx::read_fasta(BufReader::new(
            File::open(path).map_err(|e| format!("{path}: {e}"))?,
        ))
        .map_err(|e| e.to_string())?;
        if genomes.iter().any(|g: &Genome| g.name() == genome.name()) {
            return Err(format!(
                "duplicate reference name {:?} (from {path}); every --reference \
                 needs a unique FASTA header",
                genome.name()
            ));
        }
        genomes.push(genome);
    }
    let reads = fastx::read_fastq(BufReader::new(
        File::open(reads_path).map_err(|e| format!("{reads_path}: {e}"))?,
    ))
    .map_err(|e| e.to_string())?;
    let shards = shards_from(parsed)?;
    let params = MapperParams {
        shards,
        ..MapperParams::default()
    };
    let set = ReferenceSet::build(&genomes, params);
    for (name, mapper) in set.names().iter().zip(set.mappers()) {
        eprintln!(
            "indexed {name}: {} shard(s), {} entries (largest shard {})",
            mapper.index().shard_count(),
            mapper.index().total_entries(),
            mapper.index().max_shard_entries()
        );
    }

    let mut records = Vec::new();
    let mut unmapped = 0usize;
    for read in &reads {
        match set.map(&read.seq).best {
            Some(m) => records.push(PafRecord::from_set_mapping(
                format!("read{}", read.id),
                read.len(),
                &set,
                &m,
            )),
            None => unmapped += 1,
        }
    }
    match opt(parsed, "paf") {
        Some(path) => {
            let f = File::create(path).map_err(|e| e.to_string())?;
            write_paf(BufWriter::new(f), &records).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} records to {path} ({unmapped} unmapped)",
                records.len()
            );
        }
        None => {
            write_paf(std::io::stdout().lock(), &records).map_err(|e| e.to_string())?;
            eprintln!("{} mapped, {unmapped} unmapped", records.len());
        }
    }
    Ok(())
}

fn shards_from(parsed: &Parsed) -> Result<Shards, String> {
    match opt(parsed, "shards") {
        None => Ok(Shards::Single),
        Some(s) => Shards::parse(s).ok_or_else(|| format!("invalid --shards {s:?}")),
    }
}

/// `--lanes`: the Viterbi lane-batch width for `run`/`stream`/`serve`.
/// Defaults to the `GENPIP_LANES` environment variable, then auto. `0` and
/// unparsable widths are user errors (exit nonzero), not silent clamps —
/// only widths above the kernel maximum clamp.
fn lanes_from(parsed: &Parsed) -> Result<Lanes, String> {
    match opt(parsed, "lanes") {
        None => Ok(Lanes::from_env_or(Lanes::Auto)),
        Some(s) => Lanes::parse(s)
            .ok_or_else(|| format!("invalid --lanes {s:?} (use auto or a width ≥ 1)")),
    }
}

/// `--on-fault`: the policy, plus whether the user asked for it explicitly
/// (an explicit quarantine/retry request means quarantined reads are an
/// expected outcome, not a failure exit).
fn fault_policy_from(parsed: &Parsed) -> Result<(FaultPolicy, bool), String> {
    match opt(parsed, "on-fault") {
        None => Ok((FaultPolicy::default(), false)),
        Some(s) => FaultPolicy::parse(s)
            .map(|p| (p, true))
            .ok_or_else(|| format!("invalid --on-fault {s:?} (use fail, quarantine, retry[:N])")),
    }
}

/// Nonzero-exit rule shared by `run` and `stream`: failed reads fail the
/// invocation unless containment was explicitly requested.
fn fault_exit(failed: usize, explicit_containment: bool) -> Result<(), String> {
    if failed > 0 && !explicit_containment {
        Err(format!(
            "{failed} read(s) failed (rerun with --on-fault quarantine to accept quarantined reads)"
        ))
    } else {
        Ok(())
    }
}

fn er_from(parsed: &Parsed) -> Result<ErMode, String> {
    match opt(parsed, "er").unwrap_or("full") {
        "full" => Ok(ErMode::Full),
        "qsr" => Ok(ErMode::QsrOnly),
        "cp" | "off" | "none" => Ok(ErMode::None),
        other => Err(format!("unknown --er {other:?}")),
    }
}

/// One `run` `--reference` spec, parsed into a synthetic extra reference:
/// `name=ID,len=N[,seed=S]`. Every spec becomes one additional pan-genome
/// reference mapped alongside the profile's own.
fn parse_reference_spec(spec: &str, index: usize) -> Result<Arc<Genome>, String> {
    let mut name = None;
    let mut len = None;
    let mut seed = None;
    for part in spec.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--reference part {part:?} is not key=value (in {spec:?})"))?;
        match key {
            "name" => name = Some(value.to_string()),
            "len" => {
                len = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--reference {spec:?}: invalid len {value:?}"))?,
                )
            }
            "seed" => {
                seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("--reference {spec:?}: invalid seed {value:?}"))?,
                )
            }
            other => {
                return Err(format!(
                    "--reference {spec:?}: unknown key {other:?} (use name, len, seed)"
                ))
            }
        }
    }
    let len = len.ok_or_else(|| format!("--reference {spec:?} needs len="))?;
    if len == 0 {
        return Err(format!("--reference {spec:?}: len must be positive"));
    }
    Ok(Arc::new(
        GenomeBuilder::new(len)
            .seed(seed.unwrap_or(1_000 + index as u64))
            .name(name.unwrap_or_else(|| format!("ref{index}")))
            .build(),
    ))
}

fn extra_references_from(parsed: &Parsed) -> Result<Vec<Arc<Genome>>, String> {
    opt_all(parsed, "reference")
        .iter()
        .enumerate()
        .map(|(i, spec)| parse_reference_spec(spec, i))
        .collect()
}

fn cmd_run(parsed: &Parsed) -> Result<(), String> {
    let profile = profile_from(parsed)?;
    let er = er_from(parsed)?;
    let shards = shards_from(parsed)?;
    let (fault_policy, explicit_fault) = fault_policy_from(parsed)?;
    let lanes = lanes_from(parsed)?;
    let extra_references = extra_references_from(parsed)?;
    println!(
        "running GenPIP ({:?}) on {} ({} index shard(s))…",
        er,
        profile.name,
        shards.resolve(profile.genome_len)
    );
    if !extra_references.is_empty() {
        let names: Vec<&str> = extra_references.iter().map(|g| g.name()).collect();
        println!(
            "pan-genome: mapping against {} + {}",
            profile.name,
            names.join(" + ")
        );
    }
    let dataset = profile.generate();
    let config = GenPipConfig::for_dataset(&profile)
        .with_shards(shards)
        .with_lanes(lanes)
        .with_fault_policy(fault_policy)
        .with_extra_references(extra_references);
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .source(profile.name, dataset.stream())
        .sink(profile.name, |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .map_err(|e| e.to_string())?;
    let run = PipelineRun {
        config: Arc::new(config),
        er,
        chunked: true,
        reads,
    };
    let totals = run.totals();
    let count = |pred: fn(&ReadOutcome) -> bool| run.count_outcomes(pred);
    println!("reads:          {}", run.reads.len());
    println!(
        "mapped:         {}",
        count(|o| matches!(o, ReadOutcome::Mapped(_)))
    );
    println!(
        "QSR-rejected:   {}",
        count(|o| matches!(o, ReadOutcome::RejectedQsr { .. }))
    );
    println!(
        "CMR-rejected:   {}",
        count(|o| matches!(o, ReadOutcome::RejectedCmr { .. }))
    );
    println!(
        "QC-filtered:    {}",
        count(|o| matches!(o, ReadOutcome::FilteredQc { .. }))
    );
    println!(
        "unmapped:       {}",
        count(|o| matches!(o, ReadOutcome::Unmapped { .. }))
    );
    println!(
        "basecalled:     {} of {} samples ({:.1}% saved)",
        totals.samples,
        dataset.total_samples(),
        100.0 * (1.0 - totals.samples as f64 / dataset.total_samples() as f64)
    );
    // Under a containing policy, quarantined reads never reach `run.reads`.
    let failed = dataset.reads.len() - run.reads.len();
    if failed > 0 {
        println!("failed:         {failed} (quarantined)");
    }
    fault_exit(failed, explicit_fault && fault_policy != FaultPolicy::Fail)
}

/// Where a `stream` source's reads come from.
enum SourceKind {
    /// Simulated on the fly from a dataset profile (`--source`).
    Simulated(DatasetProfile),
    /// Replayed from an on-disk GSC signal container (`--signal-in`),
    /// starting at read index `offset`.
    Container { path: String, offset: usize },
}

/// One `--source` spec (`profile=<ecoli|human>[,scale=F][,name=ID]
/// [,weight=N]`) or `--signal-in` spec (`PATH[,name=ID][,offset=K]
/// [,weight=N]`), parsed.
struct SourceSpec {
    name: String,
    kind: SourceKind,
    weight: u32,
}

fn parse_source_spec(spec: &str, index: usize, default_scale: f64) -> Result<SourceSpec, String> {
    let mut profile_name = None;
    let mut scale = default_scale;
    let mut name = None;
    let mut weight = 1u32;
    for part in spec.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--source part {part:?} is not key=value (in {spec:?})"))?;
        match key {
            "profile" => profile_name = Some(value),
            "scale" => scale = parse_scale(value).map_err(|e| format!("--source {spec:?}: {e}"))?,
            "name" => name = Some(value.to_string()),
            "weight" => {
                weight = value
                    .parse()
                    .map_err(|_| format!("--source {spec:?}: invalid weight {value:?}"))?
            }
            other => {
                return Err(format!(
                    "--source {spec:?}: unknown key {other:?} \
                     (use profile, scale, name, weight)"
                ))
            }
        }
    }
    let profile_name = profile_name.ok_or_else(|| format!("--source {spec:?} needs profile="))?;
    let profile = profile_by_name(profile_name)?.scaled(scale);
    Ok(SourceSpec {
        name: name.unwrap_or_else(|| format!("{profile_name}{index}")),
        kind: SourceKind::Simulated(profile),
        weight,
    })
}

/// One `--signal-in` spec: a GSC container path, then optional comma-joined
/// `name=`/`offset=`/`weight=` pairs. The default name is the file stem.
fn parse_signal_spec(spec: &str, index: usize) -> Result<SourceSpec, String> {
    let mut parts = spec.split(',');
    let path = parts
        .next()
        .filter(|p| !p.is_empty() && !p.contains('='))
        .ok_or_else(|| format!("--signal-in {spec:?} must start with a container path"))?;
    let mut name = None;
    let mut offset = 0usize;
    let mut weight = 1u32;
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--signal-in part {part:?} is not key=value (in {spec:?})"))?;
        match key {
            "name" => name = Some(value.to_string()),
            "offset" => {
                offset = value
                    .parse()
                    .map_err(|_| format!("--signal-in {spec:?}: invalid offset {value:?}"))?
            }
            "weight" => {
                weight = value
                    .parse()
                    .map_err(|_| format!("--signal-in {spec:?}: invalid weight {value:?}"))?
            }
            other => {
                return Err(format!(
                    "--signal-in {spec:?}: unknown key {other:?} \
                     (use name, offset, weight)"
                ))
            }
        }
    }
    let name = name.unwrap_or_else(|| {
        std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
            .unwrap_or_else(|| format!("gsc{index}"))
    });
    Ok(SourceSpec {
        name,
        kind: SourceKind::Container {
            path: path.to_string(),
            offset,
        },
        weight,
    })
}

fn schedule_from(parsed: &Parsed, weights: Vec<u32>) -> Result<Schedule, String> {
    let spelled = opt(parsed, "schedule").unwrap_or("fair");
    match Schedule::parse(spelled) {
        Some(Schedule::Priority(_)) => Ok(Schedule::Priority(weights)),
        Some(schedule) => Ok(schedule),
        None => Err(format!(
            "invalid --schedule {spelled:?} (use fair, sequential, or priority)"
        )),
    }
}

fn cmd_stream(parsed: &Parsed) -> Result<(), String> {
    let er = er_from(parsed)?;
    let usize_opt = |key: &str, default: usize| -> Result<usize, String> {
        match opt(parsed, key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("invalid --{key} {s:?}")),
        }
    };
    let queue = usize_opt("queue", 8)?.max(1);
    let progress = usize_opt("progress", 50)?;
    let shards = shards_from(parsed)?;
    let lanes = lanes_from(parsed)?;
    let (mut fault_policy, explicit_fault) = fault_policy_from(parsed)?;
    let inject_rate = match opt(parsed, "inject-faults") {
        None => 0.0,
        Some(s) => {
            let rate: f64 = s
                .parse()
                .map_err(|_| format!("invalid --inject-faults {s:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err("--inject-faults must be in [0, 1]".into());
            }
            rate
        }
    };
    // Injected faults with the default Fail policy would tear the session
    // down with a panic. Quarantine instead so the run completes and prints
    // its per-source fault summary — but still exit nonzero, because the
    // containment was not explicitly requested (see `fault_exit`).
    if inject_rate > 0.0 && !explicit_fault {
        fault_policy = FaultPolicy::Quarantine;
    }
    let parallelism = match opt(parsed, "threads") {
        None => Parallelism::from_env_or(Parallelism::Auto),
        Some(s) => Parallelism::parse(s).ok_or_else(|| format!("invalid --threads {s:?}"))?,
    };

    // Sources: repeated --source (simulated) and --signal-in (on-disk GSC
    // container) specs, or a single simulated one synthesized from
    // --profile/--scale for the classic one-run invocation.
    let default_scale = scale_from(parsed, 0.1)?;
    let mut specs: Vec<SourceSpec> = opt_all(parsed, "source")
        .iter()
        .enumerate()
        .map(|(i, spec)| parse_source_spec(spec, i, default_scale))
        .collect::<Result<_, _>>()?;
    let n_sim = specs.len();
    for (i, spec) in opt_all(parsed, "signal-in").iter().enumerate() {
        specs.push(parse_signal_spec(spec, n_sim + i)?);
    }
    if specs.is_empty() {
        let profile = profile_from(parsed)?;
        specs.push(SourceSpec {
            name: profile.name.to_string(),
            kind: SourceKind::Simulated(profile),
            weight: 1,
        });
    }
    // Session::run would reject duplicates too, but catching them here
    // keeps the error ahead of the session banner.
    for (i, spec) in specs.iter().enumerate() {
        if specs[..i].iter().any(|other| other.name == spec.name) {
            return Err(format!("duplicate source name {:?}", spec.name));
        }
    }
    let schedule = schedule_from(parsed, specs.iter().map(|s| s.weight).collect())?;

    // Checkpoint/resume plumbing. A checkpoint records, per source, how
    // many reads were delivered in order (the index to reseek a container
    // to) and, with --fastq-out, the flushed byte size of every output
    // file (the length to truncate back to before appending).
    let checkpoint_path = opt(parsed, "checkpoint").map(str::to_string);
    let checkpoint_every = usize_opt("checkpoint-every", 25)?.max(1);
    let drain_after = match opt(parsed, "drain-after") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|_| format!("invalid --drain-after {s:?}"))?,
        ),
    };
    let resume = match opt(parsed, "resume") {
        None => None,
        Some(path) => {
            let file = CheckpointFile::load(path).map_err(|e| format!("{path}: {e}"))?;
            // `complete` marks a finalized cut (the prior session wound
            // down cleanly, e.g. after a drain); a mid-run cut means the
            // run was killed between checkpoints. Both resume the same way.
            println!(
                "resuming from {path} ({} cut)",
                if file.complete {
                    "finalized"
                } else {
                    "mid-run"
                }
            );
            Some(file)
        }
    };
    if resume.is_some()
        && specs
            .iter()
            .any(|s| matches!(s.kind, SourceKind::Simulated(_)))
    {
        return Err("--resume needs every source to be a seekable --signal-in container".into());
    }
    // What each source already delivered before this process started.
    let mut base_marks: Vec<(u64, u64)> = Vec::with_capacity(specs.len());
    for spec in &specs {
        match &resume {
            None => base_marks.push((0, 0)),
            Some(ckpt) => {
                let mark = ckpt
                    .source(&spec.name)
                    .ok_or_else(|| format!("checkpoint has no entry for source {:?}", spec.name))?;
                base_marks.push((mark.emitted, mark.failed));
            }
        }
    }
    let base_retried: u64 = resume.as_ref().map(|c| c.retried).unwrap_or(0);

    let fastq_out = opt(parsed, "fastq-out").map(str::to_string);
    // Every source runs its own operating point (N_qs, N_cm follow its
    // profile, or a container's embedded reference name) via a per-source
    // config; the session-wide config (first source's) only contributes
    // transport-level knobs like parallelism.
    let keep_bases = fastq_out.is_some();
    let source_config = |base: GenPipConfig| {
        base.with_parallelism(parallelism)
            .with_shards(shards)
            .with_lanes(lanes)
            .with_keep_bases(keep_bases)
            .with_fault_policy(fault_policy)
    };
    // Open container sources up front: the session needs the handles, the
    // embedded reference name picks each one's operating point, and a bad
    // file should fail the invocation before the session banner.
    enum SourceInput {
        Sim(DatasetProfile),
        File(GscReadSource),
    }
    let mut inputs: Vec<SourceInput> = Vec::with_capacity(specs.len());
    let mut configs: Vec<GenPipConfig> = Vec::with_capacity(specs.len());
    let mut expected: Vec<usize> = Vec::with_capacity(specs.len());
    let mut descs: Vec<String> = Vec::with_capacity(specs.len());
    let mut shard_counts: Vec<usize> = Vec::with_capacity(specs.len());
    let mut statuses: Vec<(String, GscStatus)> = Vec::new();
    for (spec, &(base_emitted, _)) in specs.iter().zip(&base_marks) {
        match &spec.kind {
            SourceKind::Simulated(profile) => {
                configs.push(source_config(GenPipConfig::for_dataset(profile)));
                expected.push(profile.n_reads);
                descs.push(format!(
                    "{}, {} bp genome",
                    profile.name, profile.genome_len
                ));
                shard_counts.push(shards.resolve(profile.genome_len));
                inputs.push(SourceInput::Sim(profile.clone()));
            }
            SourceKind::Container { path, offset } => {
                let start = offset + base_emitted as usize;
                let source =
                    GscReadSource::open_at(path, start).map_err(|e| format!("{path}: {e}"))?;
                let reader = source.reader();
                configs.push(source_config(GenPipConfig::for_reference_name(
                    reader.reference().name(),
                )));
                expected.push(reader.read_count().saturating_sub(start));
                descs.push(format!("{path}, reads {start}..{}", reader.read_count()));
                shard_counts.push(shards.resolve(reader.reference().len()));
                statuses.push((spec.name.clone(), source.status()));
                inputs.push(SourceInput::File(source));
            }
        }
    }
    if configs
        .iter()
        .any(|c| (c.n_qs, c.n_cm) != (configs[0].n_qs, configs[0].n_cm))
    {
        eprintln!(
            "note: mixed profiles in one session — each source runs its own \
             early-rejection operating point (N_qs, N_cm)"
        );
    }
    let config = configs[0].clone();
    let opts = StreamOptions {
        queue_capacity: queue,
        progress_every: progress,
        ..StreamOptions::default()
    };

    println!(
        "session: GenPIP ({er:?}), {} source(s) under {schedule:?}, \
         {} worker(s), queue {queue}",
        specs.len(),
        parallelism.workers(),
    );
    // One FASTQ writer per source: a single source writes --fastq-out
    // verbatim, several write `<path>.<name>` each. A resumed run truncates
    // each file back to its checkpointed (flushed) byte size and appends,
    // so the final file is byte-identical to an uninterrupted run's.
    let mut fastq_paths: Vec<Option<String>> = Vec::new();
    let mut fastq_sinks: Vec<Option<RefCell<FastqSink<BufWriter<File>>>>> = Vec::new();
    for spec in &specs {
        match &fastq_out {
            None => {
                fastq_paths.push(None);
                fastq_sinks.push(None);
            }
            Some(path) => {
                let path = if specs.len() == 1 {
                    path.clone()
                } else {
                    format!("{path}.{}", spec.name)
                };
                let file = match &resume {
                    None => File::create(&path).map_err(|e| format!("{path}: {e}"))?,
                    Some(ckpt) => {
                        let bytes = ckpt.fastq_for(&spec.name).map(|m| m.bytes).unwrap_or(0);
                        // Keep the file's prefix: resume truncates to the
                        // checkpointed byte position, not to zero.
                        let mut file = OpenOptions::new()
                            .read(true)
                            .write(true)
                            .create(true)
                            .truncate(false)
                            .open(&path)
                            .map_err(|e| format!("{path}: {e}"))?;
                        file.set_len(bytes).map_err(|e| format!("{path}: {e}"))?;
                        file.seek(SeekFrom::Start(bytes))
                            .map_err(|e| format!("{path}: {e}"))?;
                        println!("  resuming {path} at byte {bytes}");
                        file
                    }
                };
                fastq_sinks.push(Some(RefCell::new(FastqSink::new(BufWriter::new(file)))));
                fastq_paths.push(Some(path));
            }
        }
    }
    let mut session = Session::new(config)
        .flow(Flow::GenPip(er))
        .schedule(schedule)
        .options(opts);
    // The drain switch: a sink whose FASTQ writer goes sticky-bad pulls it,
    // turning an unwritable output into a graceful wind-down instead of a
    // torrent of dropped records.
    let control = SessionControl::new();
    let emitted_total = Rc::new(Cell::new(0usize));
    let name_width = specs.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for (i, ((spec, input), fastq)) in specs.iter().zip(inputs).zip(&fastq_sinks).enumerate() {
        println!(
            "  source {:<name_width$}  {} reads ({}, weight {}, {} index shard(s))",
            spec.name, expected[i], descs[i], spec.weight, shard_counts[i],
        );
        let name = spec.name.clone();
        let fastq = fastq.as_ref();
        let control_for_sink = control.clone();
        let emitted_total = Rc::clone(&emitted_total);
        let source_expected = expected[i];
        let config = configs[i].clone();
        // Rate 0 makes the injector a transparent wrapper, so every source
        // goes through it and the per-kind types stay uniform.
        let seed = 0x9E1F + i as u64;
        session = match input {
            SourceInput::Sim(profile) => session.source_with_config(
                spec.name.as_str(),
                FaultInjector::new(StreamingSimulator::new(&profile), inject_rate, seed),
                config,
            ),
            SourceInput::File(source) => session.source_with_config(
                spec.name.as_str(),
                FaultInjector::new(source, inject_rate, seed),
                config,
            ),
        };
        session = session.sink(spec.name.as_str(), move |event| {
            if let Some(sink) = fastq {
                sink.borrow_mut().handle(&event);
                if sink.borrow().has_error() && !control_for_sink.is_draining() {
                    eprintln!("  [{name}] FASTQ writer failed — draining session");
                    control_for_sink.drain();
                }
            }
            match event {
                StreamEvent::Failed { read_id, fault } => {
                    eprintln!("  [{name:<name_width$}] read {read_id} failed: {fault}");
                    note_emitted(&emitted_total, drain_after, &control_for_sink);
                }
                StreamEvent::Progress(p) => {
                    println!(
                        "  [{name:<name_width$} {:>5}/{source_expected} reads]  mapped {:>5}  \
                         rejected {:>5}  qc-filtered {:>4}  unmapped {:>4}  \
                         ({} samples basecalled)",
                        p.reads_emitted,
                        p.mapped,
                        p.rejected_qsr + p.rejected_cmr,
                        p.filtered_qc,
                        p.unmapped,
                        p.samples_basecalled
                    );
                }
                StreamEvent::Read(_) => {
                    note_emitted(&emitted_total, drain_after, &control_for_sink);
                }
            }
        });
    }
    // The checkpoint sink runs on the emitting thread between in-order
    // emissions, after every per-source sink has seen its events — so
    // flushing the FASTQ writers here yields byte offsets exactly
    // consistent with the recorded read counts.
    let ckpt_error: Rc<RefCell<Option<String>>> = Rc::new(RefCell::new(None));
    if let Some(path) = checkpoint_path {
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let fastq_sinks = &fastq_sinks;
        let ckpt_error = Rc::clone(&ckpt_error);
        let base_marks = base_marks.clone();
        session = session.checkpoint(checkpoint_every, move |cut| {
            if ckpt_error.borrow().is_some() {
                return;
            }
            let write = || -> Result<(), String> {
                let mut file = CheckpointFile {
                    retried: base_retried + cut.retried as u64,
                    complete: cut.complete,
                    ..CheckpointFile::default()
                };
                for sc in &cut.sources {
                    let (base_emitted, base_failed) = names
                        .iter()
                        .position(|n| n == sc.id.as_str())
                        .map(|i| base_marks[i])
                        .unwrap_or((0, 0));
                    file.sources.push(SourceMark {
                        name: sc.id.as_str().to_string(),
                        emitted: base_emitted + sc.outcomes.reads_emitted as u64,
                        failed: base_failed + sc.outcomes.failed as u64,
                    });
                }
                for (name, sink) in names.iter().zip(fastq_sinks) {
                    if let Some(sink) = sink {
                        let bytes = sink.borrow_mut().position().map_err(|e| e.to_string())?;
                        file.fastq.push(FastqMark {
                            source: name.clone(),
                            bytes,
                        });
                    }
                }
                file.write_atomic(&path).map_err(|e| format!("{path}: {e}"))
            };
            if let Err(e) = write() {
                eprintln!("  checkpoint write failed: {e}");
                *ckpt_error.borrow_mut() = Some(e);
            }
        });
    }
    let report = session
        .run_with_control(&control)
        .map_err(|e| e.to_string())?;

    for (sink, path) in fastq_sinks.into_iter().zip(&fastq_paths) {
        let (Some(sink), Some(path)) = (sink, path) else {
            continue;
        };
        let sink = sink.into_inner();
        let skipped = sink.skipped();
        let (written, _) = sink.finish().map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {written} FASTQ records to {path} ({skipped} rejected reads skipped)");
    }

    for source in &report.sources {
        let o = source.summary.outcomes;
        println!(
            "source {:<name_width$}  reads {:>5}  mapped {:>5}  QSR {:>4}  CMR {:>4}  \
             QC {:>4}  unmapped {:>4}  peak in-flight {}  residency p50/p99 {}/{}",
            source.id,
            o.reads_emitted,
            o.mapped,
            o.rejected_qsr,
            o.rejected_cmr,
            o.filtered_qc,
            o.unmapped,
            source.summary.max_in_flight,
            source.summary.latency.p50,
            source.summary.latency.p99,
        );
    }
    let o = report.outcomes;
    println!("reads:          {}", o.reads_emitted);
    println!("mapped:         {}", o.mapped);
    println!("QSR-rejected:   {}", o.rejected_qsr);
    println!("CMR-rejected:   {}", o.rejected_cmr);
    println!("QC-filtered:    {}", o.filtered_qc);
    println!("unmapped:       {}", o.unmapped);
    println!(
        "peak in-flight: {} resident read chains across all sources (bound: {})",
        report.max_in_flight, report.in_flight_limit
    );
    println!(
        "residency:      p50 {} / p99 {} / max {} chunk-work units per read",
        report.latency.p50, report.latency.p99, report.latency.max
    );
    println!(
        "basecalled:     {} samples across {} bases",
        report.totals.samples, report.totals.bases_called
    );
    if o.failed > 0 || report.retried > 0 {
        let per_source: Vec<String> = report
            .sources
            .iter()
            .filter(|s| s.summary.outcomes.failed > 0 || s.summary.retried > 0)
            .map(|s| {
                format!(
                    "{}: {} failed, {} retried",
                    s.id, s.summary.outcomes.failed, s.summary.retried
                )
            })
            .collect();
        println!(
            "faults:         {} read(s) failed, {} retried [{}]",
            o.failed,
            report.retried,
            per_source.join("; ")
        );
    }
    if let Some(e) = ckpt_error.borrow_mut().take() {
        return Err(format!("checkpoint write failed: {e}"));
    }
    // A container error (corruption, truncation, a failed read) ended its
    // source early; the session completed, but the invocation must not
    // claim success.
    let container_errors: Vec<String> = statuses
        .iter()
        .filter_map(|(name, status)| status.error().map(|e| format!("source {name:?}: {e}")))
        .collect();
    if !container_errors.is_empty() {
        return Err(container_errors.join("; "));
    }
    fault_exit(
        o.failed,
        explicit_fault && fault_policy != FaultPolicy::Fail,
    )
}

/// Counts one emitted read toward `--drain-after`, draining the session
/// once the threshold is reached — a deterministic stand-in for killing a
/// run mid-flight when exercising `--checkpoint`/`--resume`.
fn note_emitted(count: &Cell<usize>, drain_after: Option<usize>, control: &SessionControl) {
    count.set(count.get() + 1);
    if drain_after == Some(count.get()) {
        eprintln!(
            "  draining session after {} emitted read(s) (--drain-after)",
            count.get()
        );
        control.drain();
    }
}

/// Deadline-schedule residency goal (chunk-work units) for scripted sources
/// that do not spell their own `target=`.
const SERVE_DEFAULT_TARGET: u64 = 64;

/// A source named in a `serve` script attach step: simulated from a
/// profile, or replayed from an on-disk GSC container.
struct ServeSpec {
    name: String,
    kind: SourceKind,
    weight: u32,
    target: Option<u64>,
}

/// A serve source opened and ready to register or attach.
enum ServeInput {
    Sim(DatasetProfile),
    File(Box<GscReadSource>),
}

/// Opens a serve spec's read source. Returns the input, its untuned
/// operating point, the number of reads it will deliver, and a banner
/// description.
fn serve_input(spec: &ServeSpec) -> Result<(ServeInput, GenPipConfig, usize, String), String> {
    match &spec.kind {
        SourceKind::Simulated(profile) => Ok((
            ServeInput::Sim(profile.clone()),
            GenPipConfig::for_dataset(profile),
            profile.n_reads,
            profile.name.to_string(),
        )),
        SourceKind::Container { path, offset } => {
            let source =
                GscReadSource::open_at(path, *offset).map_err(|e| format!("{path}: {e}"))?;
            let reader = source.reader();
            let config = GenPipConfig::for_reference_name(reader.reference().name());
            let expected = reader.read_count().saturating_sub(*offset);
            let desc = format!("{path}, reads {offset}..{}", reader.read_count());
            Ok((ServeInput::File(Box::new(source)), config, expected, desc))
        }
    }
}

/// What a `serve` script step does when it fires.
enum ServeAction {
    Attach(Box<ServeSpec>),
    Detach(String),
    Drain,
}

/// One scripted step: fires once `after` reads have been emitted across all
/// sources. Steps written without `at` register before the run instead.
struct ScriptStep {
    line_no: usize,
    after: usize,
    action: ServeAction,
}

fn parse_serve_spec(name: &str, spec: &str, default_scale: f64) -> Result<ServeSpec, String> {
    let mut profile_name = None;
    let mut file = None;
    let mut offset = 0usize;
    let mut scale = default_scale;
    let mut weight = 1u32;
    let mut target = None;
    for part in spec.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("spec part {part:?} is not key=value"))?;
        match key {
            "profile" => profile_name = Some(value),
            "file" => file = Some(value.to_string()),
            "offset" => {
                offset = value
                    .parse()
                    .map_err(|_| format!("invalid offset {value:?}"))?
            }
            "scale" => scale = parse_scale(value)?,
            "weight" => {
                weight = value
                    .parse()
                    .map_err(|_| format!("invalid weight {value:?}"))?
            }
            "target" => {
                target = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid target {value:?}"))?,
                )
            }
            other => {
                return Err(format!(
                    "unknown key {other:?} (use profile, file, offset, scale, weight, target)"
                ))
            }
        }
    }
    let kind = match (profile_name, file) {
        (Some(profile), None) => SourceKind::Simulated(profile_by_name(profile)?.scaled(scale)),
        (None, Some(path)) => SourceKind::Container { path, offset },
        (Some(_), Some(_)) => return Err("attach spec has both profile= and file=".into()),
        (None, None) => return Err("attach spec needs profile= or file=".into()),
    };
    Ok(ServeSpec {
        name: name.to_string(),
        kind,
        weight,
        target,
    })
}

/// Parses a `serve` script into the sources registered before the run and
/// the steps fired through the live control plane.
fn parse_script(
    text: &str,
    default_scale: f64,
) -> Result<(Vec<ServeSpec>, Vec<ScriptStep>), String> {
    let mut initial = Vec::new();
    let mut steps: Vec<ScriptStep> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("script line {line_no}: {msg}");
        let words: Vec<&str> = line.split_whitespace().collect();
        let (after, rest) = if words[0] == "at" {
            let count = words
                .get(1)
                .and_then(|w| w.parse::<usize>().ok())
                .ok_or_else(|| err("`at` needs a read count".into()))?;
            (Some(count), &words[2..])
        } else {
            (None, &words[..])
        };
        let action = match *rest {
            ["attach", name, spec] => ServeAction::Attach(Box::new(
                parse_serve_spec(name, spec, default_scale).map_err(err)?,
            )),
            ["detach", name] => ServeAction::Detach(name.to_string()),
            ["drain"] => ServeAction::Drain,
            _ => {
                return Err(err(format!(
                    "unrecognized step {line:?} \
                     (use attach NAME SPEC, detach NAME, or drain)"
                )))
            }
        };
        match (after, action) {
            (None, ServeAction::Attach(spec)) => initial.push(*spec),
            (None, _) => return Err(err("detach and drain need `at COUNT`".into())),
            (Some(after), action) => steps.push(ScriptStep {
                line_no,
                after,
                action,
            }),
        }
    }
    if initial.is_empty() {
        return Err(
            "script has no initial `attach` step — a session needs at least one \
             source to start"
                .into(),
        );
    }
    // Stable by count: same-count steps fire in script order.
    steps.sort_by_key(|s| s.after);
    Ok((initial, steps))
}

/// The scripted session driver, shared by every sink. Sinks count emitted
/// reads and fire due steps; fired attaches install a sink that feeds the
/// same counter, so later steps see the whole session's emissions.
struct ServeDriver {
    emitted: usize,
    steps: VecDeque<ScriptStep>,
    control: SessionControl,
    parallelism: Parallelism,
    shards: Shards,
    lanes: Lanes,
    attaches: Vec<(String, PendingAttach)>,
    detaches: Vec<(String, PendingDetach)>,
    /// Error handles of every GSC container source, checked after the run.
    statuses: Vec<(String, GscStatus)>,
    /// Failures raised by fired steps (e.g. a container that would not
    /// open), reported after the run.
    errors: Vec<String>,
}

/// Counts one emitted read and fires every step that has come due. Runs on
/// the session's emitting thread; the fired attach/detach/drain calls only
/// enqueue control commands, so nothing here blocks on the session.
fn serve_note_read(driver: &Arc<Mutex<ServeDriver>>) {
    let mut d = driver.lock().expect("serve driver poisoned");
    d.emitted += 1;
    while d.steps.front().is_some_and(|s| s.after <= d.emitted) {
        let step = d.steps.pop_front().expect("front checked");
        serve_fire(&mut d, driver, step);
    }
}

fn serve_fire(d: &mut ServeDriver, driver: &Arc<Mutex<ServeDriver>>, step: ScriptStep) {
    match step.action {
        ServeAction::Attach(spec) => {
            let (input, base, expected, desc) = match serve_input(&spec) {
                Ok(opened) => opened,
                Err(e) => {
                    println!(
                        "  [script] at {} reads: attach {:?} failed: {e}",
                        step.after, spec.name
                    );
                    d.errors.push(format!("attach {:?}: {e}", spec.name));
                    return;
                }
            };
            println!(
                "  [script] at {} reads: attach {:?} ({desc}, {expected} reads)",
                step.after, spec.name
            );
            let config = base
                .with_parallelism(d.parallelism)
                .with_shards(d.shards)
                .with_lanes(d.lanes);
            let mut attach = AttachSpec::new().config(config).weight(spec.weight);
            if let Some(target) = spec.target {
                attach = attach.deadline_target(target);
            }
            let observer = Arc::clone(driver);
            let attach = attach.sink(move |event| {
                if let StreamEvent::Read(_) = event {
                    serve_note_read(&observer);
                }
            });
            let handle = match input {
                ServeInput::Sim(profile) => d.control.attach_with(
                    spec.name.as_str(),
                    StreamingSimulator::new(&profile),
                    attach,
                ),
                ServeInput::File(source) => {
                    d.statuses.push((spec.name.clone(), source.status()));
                    d.control.attach_with(spec.name.as_str(), *source, attach)
                }
            };
            d.attaches.push((spec.name, handle));
        }
        ServeAction::Detach(name) => {
            println!("  [script] at {} reads: detach {name:?}", step.after);
            let handle = d.control.detach(name.as_str());
            d.detaches.push((name, handle));
        }
        ServeAction::Drain => {
            println!("  [script] at {} reads: drain", step.after);
            d.control.drain();
        }
    }
}

fn cmd_serve(parsed: &Parsed) -> Result<(), String> {
    let script_path = opt(parsed, "script").ok_or("serve needs --script <FILE>")?;
    let script = std::fs::read_to_string(script_path).map_err(|e| format!("{script_path}: {e}"))?;
    let er = er_from(parsed)?;
    let shards = shards_from(parsed)?;
    let usize_opt = |key: &str, default: usize| -> Result<usize, String> {
        match opt(parsed, key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("invalid --{key} {s:?}")),
        }
    };
    let queue = usize_opt("queue", 8)?.max(1);
    let max_sources = usize_opt("max-sources", 64)?;
    let lanes = lanes_from(parsed)?;
    let parallelism = match opt(parsed, "threads") {
        None => Parallelism::from_env_or(Parallelism::Auto),
        Some(s) => Parallelism::parse(s).ok_or_else(|| format!("invalid --threads {s:?}"))?,
    };
    let default_scale = scale_from(parsed, 0.05)?;
    let (initial, steps) = parse_script(&script, default_scale)?;

    let schedule = match opt(parsed, "schedule").unwrap_or("fair") {
        "fair" => Schedule::FairShare,
        "sequential" => Schedule::Sequential,
        "priority" => Schedule::Priority(initial.iter().map(|s| s.weight).collect()),
        "deadline" => Schedule::Deadline(
            initial
                .iter()
                .map(|s| s.target.unwrap_or(SERVE_DEFAULT_TARGET))
                .collect(),
        ),
        other => {
            return Err(format!(
                "invalid --schedule {other:?} (use fair, sequential, priority, or deadline)"
            ))
        }
    };

    println!(
        "serve: GenPIP ({er:?}) under {schedule:?}, {} worker(s), queue {queue}, \
         {} live step(s)",
        parallelism.workers(),
        steps.len(),
    );

    let control = SessionControl::new();
    let driver = Arc::new(Mutex::new(ServeDriver {
        emitted: 0,
        steps: steps.into(),
        control: control.clone(),
        parallelism,
        shards,
        lanes,
        attaches: Vec::new(),
        detaches: Vec::new(),
        statuses: Vec::new(),
        errors: Vec::new(),
    }));

    let tune = |config: GenPipConfig| {
        config
            .with_parallelism(parallelism)
            .with_shards(shards)
            .with_lanes(lanes)
    };
    // Open every initial source before the session starts: a bad container
    // in the script header should fail the invocation outright.
    let mut initial_inputs = Vec::with_capacity(initial.len());
    for spec in &initial {
        initial_inputs.push(serve_input(spec)?);
    }
    let first_config = tune(initial_inputs[0].1.clone());
    let mut session = Session::new(first_config)
        .flow(Flow::GenPip(er))
        .schedule(schedule)
        .options(StreamOptions {
            queue_capacity: queue,
            max_sources,
            progress_every: 0,
            ..StreamOptions::default()
        });
    for (spec, (input, base, expected, desc)) in initial.iter().zip(initial_inputs) {
        println!(
            "  source {:?}: {} reads ({}, weight {}{})",
            spec.name,
            expected,
            desc,
            spec.weight,
            match spec.target {
                Some(t) => format!(", target {t}"),
                None => String::new(),
            },
        );
        let observer = Arc::clone(&driver);
        let config = tune(base);
        session = match input {
            ServeInput::Sim(profile) => session.source_with_config(
                spec.name.as_str(),
                StreamingSimulator::new(&profile),
                config,
            ),
            ServeInput::File(source) => {
                driver
                    .lock()
                    .expect("serve driver poisoned")
                    .statuses
                    .push((spec.name.clone(), source.status()));
                session.source_with_config(spec.name.as_str(), *source, config)
            }
        };
        session = session.sink(spec.name.as_str(), move |event| {
            if let StreamEvent::Read(_) = event {
                serve_note_read(&observer);
            }
        });
    }
    let report = session
        .run_with_control(&control)
        .map_err(|e| e.to_string())?;

    let mut d = driver.lock().expect("serve driver poisoned");
    let emitted = d.emitted;
    let unfired: Vec<String> = d
        .steps
        .iter()
        .map(|s| format!("line {}: at {}", s.line_no, s.after))
        .collect();
    let attaches = std::mem::take(&mut d.attaches);
    let detaches = std::mem::take(&mut d.detaches);
    let statuses = std::mem::take(&mut d.statuses);
    let step_errors = std::mem::take(&mut d.errors);
    drop(d);

    // The session has finished, so every handle resolves without blocking.
    let mut failures = unfired
        .into_iter()
        .map(|step| format!("script step never fired ({step}) — only {emitted} reads emitted"))
        .collect::<Vec<_>>();
    failures.extend(step_errors);
    for (name, status) in &statuses {
        if let Some(e) = status.error() {
            failures.push(format!("source {name:?}: {e}"));
        }
    }
    for (name, handle) in attaches {
        if let Err(e) = handle.wait() {
            failures.push(format!("attach {name:?} refused: {e}"));
        }
    }
    for (name, handle) in detaches {
        match handle.wait() {
            Ok(summary) => println!(
                "  detached {name:?}: {} reads emitted, residency p50/p99 {}/{}",
                summary.outcomes.reads_emitted, summary.latency.p50, summary.latency.p99
            ),
            Err(e) => failures.push(format!("detach {name:?} refused: {e}")),
        }
    }

    let name_width = report
        .sources
        .iter()
        .map(|s| s.id.as_str().len())
        .max()
        .unwrap_or(0);
    for source in &report.sources {
        let o = source.summary.outcomes;
        println!(
            "source {:<name_width$}  reads {:>5}  mapped {:>5}  rejected {:>4}  \
             QC {:>4}  unmapped {:>4}  residency p50/p99 {}/{}",
            source.id,
            o.reads_emitted,
            o.mapped,
            o.rejected_qsr + o.rejected_cmr,
            o.filtered_qc,
            o.unmapped,
            source.summary.latency.p50,
            source.summary.latency.p99,
        );
    }
    println!(
        "serve:          {} reads across {} source(s), peak in-flight {} (bound {})",
        report.outcomes.reads_emitted,
        report.sources.len(),
        report.max_in_flight,
        report.in_flight_limit
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn cmd_experiment(parsed: &Parsed) -> Result<(), String> {
    let which = parsed
        .1
        .first()
        .ok_or("experiment needs a name (e.g. fig10)")?;
    let scale = scale_from(parsed, 1.0)?;
    match which.as_str() {
        "fig04" => println!("{}", experiments::fig04::run(scale)),
        "fig07" => println!("{}", experiments::fig07::run(scale)),
        "fig10" => println!("{}", experiments::fig10::run(scale)),
        "fig11" => println!("{}", experiments::fig11::run(scale)),
        "fig12" => println!("{}", experiments::fig12::run(scale)),
        "fig13" => println!("{}", experiments::fig13::run(scale)),
        "tab01" => println!("{}", experiments::tab01::run(scale)),
        "tab02" => println!("{}", experiments::tab02::run()),
        "useless" => println!("{}", experiments::useless::run(scale)),
        "ablations" => println!("{}", experiments::ablations::run(scale)),
        other => return Err(format!("unknown experiment {other:?}")),
    }
    Ok(())
}
